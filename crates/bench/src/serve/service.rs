//! The overload-safe serving core.
//!
//! [`Service::run`] drives a seeded [`ArrivalTrace`] through the
//! persistent-thread stack and returns a deterministic [`OutcomeLog`].
//! Determinism at any `--jobs` and `--engine-workers` count comes from a
//! strict two-phase split:
//!
//! 1. **Phase A — profile precompute (parallel).** Each query's full
//!    retry chain is simulated up front with
//!    [`resume_workload_detailed`]: attempt 0 from a fresh start, each
//!    later attempt resumed from the previous failure's checkpoint with
//!    its pruned fault plan (so a retry replays fewer rounds than a
//!    restart). An attempt depends only on the query, its seeded fault
//!    plan, and the checkpoint chain — never on service state — so the
//!    chains are embarrassingly parallel under [`Sched::par_map`], which
//!    returns them in trace order regardless of worker count.
//! 2. **Phase B — discrete-event replay (serial).** All *scheduling*
//!    decisions — admission, backpressure, shedding, dispatch order,
//!    backoff, quarantine — happen in one serial event loop over
//!    simulated cycles, totally ordered by `(cycle, event class,
//!    sequence number)` with retries beating arrivals on ties. No wall
//!    clock, no thread identity, no map iteration order feeds a
//!    decision.
//!
//! With [`ServiceConfig::batching`] on, Phase B drains a whole
//! weighted-DRR window per device occupancy, fuses compatible clean
//! queries into [`QueryBatch`] launches, and overlaps same-kind
//! launches co-resident on the device. Fused units *do* run the engine
//! inside Phase B — safe because a co-resident run is itself
//! deterministic at any engine-worker count and the unit's composition
//! is a pure function of the trace and the Phase A profiles, so the
//! replay stays byte-identical.
//!
//! The service's retry ladder sits *above* the in-run recovery of
//! `resume_workload`: the configured [`RecoveryPolicy`] uses
//! `max_attempts: 0`, so every abort escalates to the service as a typed
//! [`RunFailure`], and the service decides — exponential backoff and
//! re-admission while the retry budget lasts, quarantine with the full
//! [`RecoveryLog`] once it is spent.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

use gpu_queue::Variant;
use pt_bfs::workload::{Bfs, ConnectedComponents, PrDelta, PtWorkload, QueryBatch, Sssp};
use pt_bfs::{
    resume_workload_detailed, run_workloads_coresident, Checkpoint, PtConfig, RecoveryLog,
    RecoveryPolicy,
};
use ptq_graph::{random_weights, Csr, Dataset};
use simt::{AbortReason, FaultPlan, FaultSpec, GpuConfig};

use super::admission::{AdmissionError, AdmissionQueue};
use super::backoff::BackoffSchedule;
use super::outcome::{Disposition, OutcomeLog, QueryOutcome};
use super::trace::{ArrivalTrace, QuerySpec, WorkloadKind};
use crate::experiments::common::{engine_workers, DatasetCache};
use crate::{Scale, Sched};

/// Seed used by every SSSP query's edge weights (same stream as the
/// workloads experiment, so serve and batch runs agree on the graphs).
pub const WEIGHT_SEED: u64 = 0x57ED;

/// Salt mixed into a query id for its backoff jitter stream.
const BACKOFF_SALT: u64 = 0xBACC_0FF5;

/// Salt mixed into a query id for its fault-plan stream.
const FAULT_SALT: u64 = 0xFA_017;

/// Service configuration: the device, the execution variant, and the
/// admission/retry policy knobs.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Simulated device shared by every query.
    pub gpu: GpuConfig,
    /// Queue design queries execute on. The default is the segmented
    /// variant, which makes execution-side `QueueFull` unreachable.
    pub variant: Variant,
    /// Workgroups per launch.
    pub workgroups: usize,
    /// Base dataset scale; each query's `rel_scale` multiplies into it.
    pub scale: Scale,
    /// Admission backlog bound (queries waiting, across all classes).
    pub backlog_limit: u64,
    /// Service-level retries after a terminal [`RunFailure`] before the
    /// query is quarantined. Total attempts = `retry_budget + 1`.
    pub retry_budget: u32,
    /// First-retry backoff delay in simulated cycles.
    pub backoff_base_cycles: u64,
    /// Backoff delay ceiling in simulated cycles.
    pub backoff_cap_cycles: u64,
    /// In-run recovery policy template. `max_attempts: 0` hands every
    /// abort to the service; a query's `watchdog_rounds` overrides the
    /// template's when nonzero.
    pub policy: RecoveryPolicy,
    /// Engine worker override for query execution; 0 inherits the
    /// process-wide budget (`--engine-workers`).
    pub engine_workers: usize,
    /// Multi-query co-scheduling policy. `None` dispatches one query
    /// per device occupancy (the classic serial core); `Some` lets the
    /// replay drain a whole DRR window per occupancy, fuse compatible
    /// clean queries into [`QueryBatch`] launches, and overlap
    /// same-kind launches co-resident on the device.
    pub batching: Option<BatchPolicy>,
}

/// How aggressively the dispatcher fuses queries (see
/// [`ServiceConfig::batching`]).
#[derive(Clone, Debug)]
pub struct BatchPolicy {
    /// Largest number of queries drained into one dispatch window (and
    /// so the most that can ever share the device at once).
    pub max_coresident: usize,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        BatchPolicy { max_coresident: 4 }
    }
}

impl BatchPolicy {
    /// Dynamic fan-out: the in-flight set tracks the backlog — a deep
    /// backlog fills the window up to `max_coresident`, a trickle
    /// degenerates to serial dispatch without holding queries back to
    /// wait for batch-mates.
    pub fn fanout(&self, backlog: u64) -> usize {
        usize::try_from(backlog)
            .unwrap_or(usize::MAX)
            .clamp(1, self.max_coresident.max(1))
    }
}

impl ServiceConfig {
    /// The standard serving configuration: the integrated Spectre part
    /// at full occupancy on the segmented queue, with a 64-query
    /// backlog and a 6-retry ladder.
    pub fn standard(scale: Scale) -> Self {
        let gpu = GpuConfig::spectre();
        let workgroups = gpu.num_cus * gpu.wgs_per_cu;
        ServiceConfig {
            gpu,
            variant: Variant::SegRfAn,
            workgroups,
            scale,
            backlog_limit: 64,
            retry_budget: 6,
            backoff_base_cycles: 10_000,
            backoff_cap_cycles: 2_000_000,
            policy: RecoveryPolicy {
                max_attempts: 0,
                checkpoint_levels: 4,
                watchdog_rounds: 0,
                ..RecoveryPolicy::default()
            },
            engine_workers: 0,
            batching: None,
        }
    }

    /// [`ServiceConfig::standard`] with the default batching policy on:
    /// the batched, weighted-fair, overlapping-occupancy core.
    pub fn batched(scale: Scale) -> Self {
        ServiceConfig {
            batching: Some(BatchPolicy::default()),
            ..Self::standard(scale)
        }
    }
}

/// One simulated attempt of a query's retry chain.
#[derive(Clone, Debug, PartialEq)]
pub struct AttemptSim {
    /// Whether the attempt completed (true only for the last attempt of
    /// a completed chain).
    pub success: bool,
    /// Simulated device cycles the attempt occupied.
    pub cycles: u64,
    /// Rounds the attempt accounted (committed + lost).
    pub rounds: u64,
    /// The attempt's recovery log.
    pub log: RecoveryLog,
}

/// A query's precomputed retry chain (Phase A output).
#[derive(Clone, Debug, PartialEq)]
pub struct ExecutionProfile {
    /// Attempts in order; the last one succeeds iff `completed`.
    pub attempts: Vec<AttemptSim>,
    /// Whether the chain ends in a validated completion.
    pub completed: bool,
    /// Vertices the completed run reached (0 otherwise).
    pub reached: usize,
    /// Admission-time cost estimate: attempt 0's cycles. Used for the
    /// projected-backlog-completion shedding decision.
    pub estimate_cycles: u64,
}

/// One same-signature group of fusable queries drained from a dispatch
/// window; its members fuse into a single [`QueryBatch`] launch, and
/// same-kind groups co-reside on the device as one unit.
#[derive(Clone)]
struct DispatchGroup {
    kind: WorkloadKind,
    dataset: Dataset,
    rel_scale: f64,
    /// Trace indices of the group's members, in drain order.
    members: Vec<usize>,
}

/// The resident multi-query service.
pub struct Service {
    config: ServiceConfig,
}

impl Service {
    /// A service with the given configuration.
    pub fn new(config: ServiceConfig) -> Self {
        Service { config }
    }

    /// The configuration the service runs with.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Serve a trace end to end: Phase A profile precompute on `sched`,
    /// Phase B serial replay. The returned log is byte-identical at any
    /// `sched` width and engine worker budget.
    pub fn run(&self, trace: &ArrivalTrace, sched: &Sched) -> OutcomeLog {
        let profiles = self.profiles(trace, sched);
        self.replay(trace, &profiles)
    }

    /// Phase A: every query's retry chain, in trace order.
    pub fn profiles(&self, trace: &ArrivalTrace, sched: &Sched) -> Vec<ExecutionProfile> {
        sched.par_map(&trace.queries, |_, query| {
            self.profile_query(trace.seed, query)
        })
    }

    /// Simulate one query's full retry chain against its shared CSR.
    fn profile_query(&self, trace_seed: u64, query: &QuerySpec) -> ExecutionProfile {
        let scale = Scale::new((self.config.scale.fraction() * query.rel_scale).min(1.0));
        let graph = DatasetCache::global().get(query.dataset, scale);
        let n = graph.num_vertices();
        let source = (query.source_salt as usize % n.max(1)) as u32;
        let plan = self.fault_plan(trace_seed, query, n);
        let mut policy = self.config.policy.clone();
        if query.watchdog_rounds > 0 {
            policy.watchdog_rounds = query.watchdog_rounds;
        }
        match query.kind {
            WorkloadKind::Bfs => {
                self.chain(&graph, query.dataset, &Bfs::new(source), &policy, &plan)
            }
            WorkloadKind::Sssp => {
                let weights = random_weights(&graph, 10, WEIGHT_SEED);
                self.chain(
                    &graph,
                    query.dataset,
                    &Sssp::new(source, weights),
                    &policy,
                    &plan,
                )
            }
            WorkloadKind::Cc => {
                self.chain(&graph, query.dataset, &ConnectedComponents, &policy, &plan)
            }
            WorkloadKind::PrDelta => {
                self.chain(&graph, query.dataset, &PrDelta::new(source), &policy, &plan)
            }
        }
    }

    /// The query's seeded fault plan (empty for clean queries).
    fn fault_plan(&self, trace_seed: u64, query: &QuerySpec, num_vertices: usize) -> FaultPlan {
        if query.faults == 0 {
            return FaultPlan::EMPTY;
        }
        let gpu = &self.config.gpu;
        FaultPlan::seeded(
            trace_seed ^ (u64::from(query.id) << 17) ^ FAULT_SALT,
            &FaultSpec {
                wave_kills: query.faults,
                cu_stalls: query.faults,
                mem_poisons: query.faults,
                max_round: 8,
                waves: self.config.workgroups * gpu.waves_per_wg,
                cus: gpu.num_cus,
                max_stall_rounds: 4,
                max_stall_cycles: 200,
                poison_buffer: query.kind.value_buffer().into(),
                poison_words: num_vertices,
            },
        )
    }

    /// Run one workload's attempt ladder: fresh start, then
    /// checkpoint-resumed retries until success or budget exhaustion.
    fn chain<W: PtWorkload>(
        &self,
        graph: &Csr,
        dataset: Dataset,
        workload: &W,
        policy: &RecoveryPolicy,
        plan: &FaultPlan,
    ) -> ExecutionProfile {
        let gpu = &self.config.gpu;
        let mut config =
            PtConfig::for_workload(workload, self.config.variant, self.config.workgroups);
        config.engine_workers = if self.config.engine_workers == 0 {
            engine_workers()
        } else {
            self.config.engine_workers
        };
        let mut attempts: Vec<AttemptSim> = Vec::new();
        let mut checkpoint = Checkpoint::start_of(workload, graph.num_vertices());
        let mut plan = plan.clone();
        for _ in 0..=self.config.retry_budget {
            match resume_workload_detailed(
                gpu,
                graph,
                workload,
                &config,
                policy,
                &plan,
                checkpoint.clone(),
            ) {
                Ok(run) => {
                    if let Err((v, want, got)) = workload.validate(graph, &run.values) {
                        panic!(
                            "serve: {} on {} diverged from the oracle at vertex {v}: expected {want}, got {got}",
                            workload.name(),
                            dataset.spec().name,
                        );
                    }
                    attempts.push(AttemptSim {
                        success: true,
                        cycles: gpu.seconds_to_cycles(run.seconds),
                        rounds: run.metrics.rounds,
                        log: run.recovery.clone(),
                    });
                    let estimate_cycles = attempts[0].cycles;
                    return ExecutionProfile {
                        attempts,
                        completed: true,
                        reached: run.reached,
                        estimate_cycles,
                    };
                }
                Err(failure) => {
                    let failure = *failure;
                    attempts.push(AttemptSim {
                        success: false,
                        cycles: gpu.seconds_to_cycles(failure.seconds),
                        rounds: failure.log.rounds_committed + failure.log.rounds_lost,
                        log: failure.log,
                    });
                    // The next attempt replays only from the last good
                    // checkpoint, against the already-fired faults'
                    // pruned plan.
                    checkpoint = failure.checkpoint;
                    plan = failure.remaining_plan;
                }
            }
        }
        let estimate_cycles = attempts[0].cycles;
        ExecutionProfile {
            attempts,
            completed: false,
            reached: 0,
            estimate_cycles,
        }
    }

    /// Phase B: the serial discrete-event replay. Public so callers
    /// that need the Phase A profiles for their own accounting (rounds
    /// simulated, table annotations) can run the phases separately;
    /// `run` is exactly `profiles` + `replay`.
    pub fn replay(&self, trace: &ArrivalTrace, profiles: &[ExecutionProfile]) -> OutcomeLog {
        // Event classes, ordered within a cycle: a retry that became
        // ready beats a fresh arrival.
        const RETRY: u8 = 0;
        const ARRIVAL: u8 = 1;

        struct St {
            attempts: u32,
            in_run_aborts: u64,
            peers: u32,
            done: Option<(Disposition, u64, usize, Option<RecoveryLog>)>,
        }
        let mut st: Vec<St> = trace
            .queries
            .iter()
            .map(|_| St {
                attempts: 0,
                in_run_aborts: 0,
                peers: 0,
                done: None,
            })
            .collect();
        let index_of = |id: u32| -> usize {
            trace
                .queries
                .iter()
                .position(|q| q.id == id)
                .expect("event for unknown query id")
        };

        // Min-heap of (cycle, class, seq, id); `seq` makes the order a
        // total one.
        let mut heap: BinaryHeap<Reverse<(u64, u8, u64, u32)>> = BinaryHeap::new();
        let mut seq = 0u64;
        for q in &trace.queries {
            heap.push(Reverse((q.arrival_cycle, ARRIVAL, seq, q.id)));
            seq += 1;
        }

        let mut admission = AdmissionQueue::new(self.config.backlog_limit);
        // Cycle from which the device is next free.
        let mut device_free = 0u64;
        // Sum of the next-attempt cycle estimates of everything queued.
        let mut pending_est = 0u64;
        let mut makespan = 0u64;
        let mut execution_queue_full = 0u64;

        loop {
            // Every event due by the time the device can next dispatch
            // competes for that dispatch slot.
            while heap
                .peek()
                .is_some_and(|Reverse((cycle, ..))| *cycle <= device_free)
            {
                let Reverse((_, class, _, id)) = heap.pop().expect("peeked");
                let qidx = index_of(id);
                let q = &trace.queries[qidx];
                if class == ARRIVAL {
                    let est = profiles[qidx].estimate_cycles;
                    let projected = device_free.saturating_add(pending_est).saturating_add(est);
                    match admission.check(q, projected) {
                        Ok(()) => {
                            admission.push(q.priority, q.tenant, q.id);
                            pending_est = pending_est.saturating_add(est);
                        }
                        Err(err) => {
                            let disposition = match err {
                                AdmissionError::QueueFull { .. } => Disposition::RejectedQueueFull,
                                AdmissionError::Shedding { .. } => Disposition::Shed,
                                AdmissionError::Quarantined { .. } => {
                                    Disposition::RejectedQuarantined
                                }
                            };
                            st[qidx].done = Some((disposition, 0, 0, None));
                            makespan = makespan.max(q.arrival_cycle);
                        }
                    }
                } else {
                    // Retry re-admission: the query already holds its
                    // slot, only the backlog estimate changes.
                    let next = st[qidx].attempts as usize;
                    admission.push(q.priority, q.tenant, q.id);
                    pending_est = pending_est.saturating_add(profiles[qidx].attempts[next].cycles);
                }
            }

            let backlog = admission.backlog();
            if backlog > 0 {
                // Drain one dispatch window: with batching off the
                // fan-out is pinned to 1 (the classic serial core);
                // with batching on it tracks the backlog up to
                // `max_coresident`, so a deep backlog fills the device
                // and a trickle degenerates to serial dispatch.
                let fanout = match &self.config.batching {
                    Some(policy) => policy.fanout(backlog),
                    None => 1,
                };
                let mut window: Vec<usize> = Vec::with_capacity(fanout);
                while window.len() < fanout {
                    match admission.take_next() {
                        Some((_, id)) => window.push(index_of(id)),
                        None => break,
                    }
                }
                let window_start = device_free;

                // Classify the window: deadline sheds drop out, clean
                // first-attempt queries are fusable and group by
                // (workload, dataset, scale) signature, everything else
                // (retries, fault-carrying or watchdog-limited queries)
                // dispatches solo through its Phase A profile.
                let mut solos: Vec<usize> = Vec::new();
                let mut groups: Vec<DispatchGroup> = Vec::new();
                for &qidx in &window {
                    let q = &trace.queries[qidx];
                    let prof = &profiles[qidx];
                    let k = st[qidx].attempts as usize;
                    let est = if k == 0 {
                        prof.estimate_cycles
                    } else {
                        prof.attempts[k].cycles
                    };
                    pending_est = pending_est.saturating_sub(est);
                    if k == 0 && window_start > q.arrival_cycle.saturating_add(q.deadline_cycles) {
                        // The wait alone blew the deadline: shed before
                        // spending device time. Never applied to retries —
                        // committed checkpoints are sunk cost the service
                        // finishes.
                        st[qidx].done =
                            Some((Disposition::Shed, window_start - q.arrival_cycle, 0, None));
                        makespan = makespan.max(window_start);
                        continue;
                    }
                    let fusable = self.config.batching.is_some()
                        && k == 0
                        && q.faults == 0
                        && q.watchdog_rounds == 0
                        && prof.completed
                        && prof.attempts.len() == 1;
                    if !fusable {
                        solos.push(qidx);
                        continue;
                    }
                    match groups.iter_mut().find(|g| {
                        g.kind == q.kind
                            && g.dataset == q.dataset
                            && g.rel_scale.to_bits() == q.rel_scale.to_bits()
                    }) {
                        Some(g) => g.members.push(qidx),
                        None => groups.push(DispatchGroup {
                            kind: q.kind,
                            dataset: q.dataset,
                            rel_scale: q.rel_scale,
                            members: vec![qidx],
                        }),
                    }
                }

                // Same-kind groups co-reside on the device as one unit
                // (each group one fused QueryBatch launch). A kind whose
                // groups hold a single query in total gains nothing from
                // a one-member launch, so it demotes to a solo dispatch
                // through its (identical) profile.
                let mut kinds: Vec<WorkloadKind> = Vec::new();
                for g in &groups {
                    if !kinds.contains(&g.kind) {
                        kinds.push(g.kind);
                    }
                }
                for kind in kinds {
                    let kgroups: Vec<DispatchGroup> =
                        groups.iter().filter(|g| g.kind == kind).cloned().collect();
                    let total: usize = kgroups.iter().map(|g| g.members.len()).sum();
                    if total < 2 {
                        solos.extend(kgroups.iter().flat_map(|g| g.members.iter().copied()));
                        continue;
                    }
                    let start = device_free;
                    let mut unit_end = start;
                    for (g, (cycles, reached)) in
                        kgroups.iter().zip(self.run_fused(trace, kind, &kgroups))
                    {
                        let done_at = start.saturating_add(cycles);
                        unit_end = unit_end.max(done_at);
                        for (&qidx, member_reached) in g.members.iter().zip(reached) {
                            let q = &trace.queries[qidx];
                            assert_eq!(
                                member_reached, profiles[qidx].reached,
                                "fused member diverged from its solo profile"
                            );
                            st[qidx].attempts += 1;
                            st[qidx].peers = total as u32;
                            st[qidx].done = Some((
                                Disposition::Completed,
                                done_at - q.arrival_cycle,
                                member_reached,
                                None,
                            ));
                            makespan = makespan.max(done_at);
                        }
                    }
                    device_free = unit_end;
                }

                // Solo dispatches in drain order on the serial timeline.
                for qidx in solos {
                    let q = &trace.queries[qidx];
                    let prof = &profiles[qidx];
                    let k = st[qidx].attempts as usize;
                    let sim = &prof.attempts[k];
                    let start = device_free;
                    device_free = start.saturating_add(sim.cycles);
                    st[qidx].attempts += 1;
                    st[qidx].peers = 1;
                    st[qidx].in_run_aborts += sim.log.aborts() as u64;
                    execution_queue_full += sim
                        .log
                        .attempts
                        .iter()
                        .filter(|a| matches!(a.reason, AbortReason::QueueFull { .. }))
                        .count() as u64;
                    if sim.success {
                        st[qidx].done = Some((
                            Disposition::Completed,
                            device_free - q.arrival_cycle,
                            prof.reached,
                            None,
                        ));
                        makespan = makespan.max(device_free);
                    } else if k + 1 < prof.attempts.len() {
                        let backoff = BackoffSchedule::new(
                            self.config.backoff_base_cycles,
                            self.config.backoff_cap_cycles,
                            trace.seed
                                ^ u64::from(q.id).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                                ^ BACKOFF_SALT,
                        );
                        let ready = device_free.saturating_add(backoff.delay(k as u32));
                        heap.push(Reverse((ready, RETRY, seq, q.id)));
                        seq += 1;
                    } else {
                        // Retry budget spent: isolate the query with its
                        // evidence and keep serving everything else.
                        admission.quarantine(q.signature(), q.id);
                        st[qidx].done = Some((
                            Disposition::Quarantined,
                            device_free - q.arrival_cycle,
                            0,
                            Some(sim.log.clone()),
                        ));
                        makespan = makespan.max(device_free);
                    }
                }
                continue;
            }

            // Device idle and nothing ready: jump to the next event.
            match heap.pop() {
                Some(Reverse((cycle, class, sq, id))) => {
                    device_free = device_free.max(cycle);
                    // Re-queue and let the drain loop above handle it at
                    // the advanced clock (it is now due by definition).
                    heap.push(Reverse((cycle, class, sq, id)));
                }
                None => break,
            }
        }

        let mut outcomes: Vec<QueryOutcome> = trace
            .queries
            .iter()
            .zip(st)
            .map(|(q, s)| {
                let (disposition, latency_cycles, reached, recovery) =
                    s.done.expect("every query must reach a terminal state");
                QueryOutcome {
                    id: q.id,
                    workload: q.kind.label(),
                    dataset: q.dataset.spec().name,
                    priority: q.priority,
                    tenant: q.tenant,
                    disposition,
                    attempts: s.attempts,
                    batch_peers: s.peers,
                    in_run_aborts: s.in_run_aborts,
                    latency_cycles,
                    reached,
                    recovery,
                }
            })
            .collect();
        outcomes.sort_by_key(|o| o.id);

        OutcomeLog {
            outcomes,
            makespan_cycles: makespan,
            admission_errors: admission.enqueue_errors(),
            execution_queue_full,
            admission_segments: admission.fresh_segments(),
        }
    }

    /// Execute one co-resident unit: `groups` (all of `kind`) each fuse
    /// into a [`QueryBatch`] and launch together on the simulated
    /// device through [`run_workloads_coresident`]. Returns, per group,
    /// its launch's occupied cycles and the per-member reached counts.
    /// Deterministic at any engine-worker count, so Phase B can run the
    /// engine here without breaking the byte-identical replay.
    fn run_fused(
        &self,
        trace: &ArrivalTrace,
        kind: WorkloadKind,
        groups: &[DispatchGroup],
    ) -> Vec<(u64, Vec<usize>)> {
        match kind {
            WorkloadKind::Bfs => self.run_fused_as(trace, groups, |source, _| Bfs::new(source)),
            WorkloadKind::Sssp => self.run_fused_as(trace, groups, |source, graph| {
                Sssp::new(source, random_weights(graph, 10, WEIGHT_SEED))
            }),
            WorkloadKind::Cc => self.run_fused_as(trace, groups, |_, _| ConnectedComponents),
            WorkloadKind::PrDelta => {
                self.run_fused_as(trace, groups, |source, _| PrDelta::new(source))
            }
        }
    }

    /// Monomorphic body of [`Service::run_fused`] for workload `W`.
    fn run_fused_as<W, F>(
        &self,
        trace: &ArrivalTrace,
        groups: &[DispatchGroup],
        make: F,
    ) -> Vec<(u64, Vec<usize>)>
    where
        W: PtWorkload,
        F: Fn(u32, &Csr) -> W,
    {
        let graphs: Vec<Arc<Csr>> = groups
            .iter()
            .map(|g| {
                let scale = Scale::new((self.config.scale.fraction() * g.rel_scale).min(1.0));
                DatasetCache::global().get(g.dataset, scale)
            })
            .collect();
        let entries: Vec<(&Csr, QueryBatch<W>)> = groups
            .iter()
            .zip(&graphs)
            .map(|(g, graph)| {
                let n = graph.num_vertices();
                let members: Vec<W> = g
                    .members
                    .iter()
                    .map(|&qidx| {
                        let source = (trace.queries[qidx].source_salt as usize % n.max(1)) as u32;
                        make(source, graph)
                    })
                    .collect();
                (graph.as_ref(), QueryBatch::new(members, n))
            })
            .collect();
        let mut config = PtConfig::new(self.config.variant, self.config.workgroups);
        config.engine_workers = if self.config.engine_workers == 0 {
            engine_workers()
        } else {
            self.config.engine_workers
        };
        let runs =
            run_workloads_coresident(&self.config.gpu, &entries, &config).unwrap_or_else(|e| {
                panic!(
                    "serve: co-resident {} unit failed: {e}",
                    entries[0].1.name()
                )
            });
        runs.iter()
            .zip(&entries)
            .zip(groups)
            .map(|((run, (graph, batch)), g)| {
                if let Err((v, want, got)) = batch.validate(graph, &run.values) {
                    panic!(
                        "serve: fused {} on {} diverged from the oracle at token {v}: expected {want}, got {got}",
                        batch.name(),
                        g.dataset.spec().name,
                    );
                }
                let reached = (0..batch.len())
                    .map(|i| batch.members()[i].reached(batch.member_values(&run.values, i)))
                    .collect();
                (self.config.gpu.seconds_to_cycles(run.seconds), reached)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serve::trace::TraceParams;

    const POOL: &[(Dataset, f64)] = &[(Dataset::RoadNY, 0.05), (Dataset::Synthetic, 0.002)];

    fn tiny_trace(seed: u64) -> ArrivalTrace {
        ArrivalTrace::seeded(
            seed,
            &TraceParams {
                queries: 4,
                mean_gap_cycles: 500_000,
                deadline_range: (u64::MAX / 8, u64::MAX / 4),
                datasets: POOL,
                fault_every: 0,
                faults_per_query: 0,
            },
        )
    }

    #[test]
    fn steady_trace_completes_every_query_identically_at_any_width() {
        let service = Service::new(ServiceConfig::standard(Scale::new(0.02)));
        let trace = tiny_trace(0x5EED);
        let serial = service.run(&trace, &Sched::serial());
        for o in &serial.outcomes {
            assert_eq!(o.disposition, Disposition::Completed, "query {}", o.id);
            assert_eq!(o.attempts, 1);
            assert!(o.reached > 0);
            assert!(o.latency_cycles > 0);
        }
        assert_eq!(serial.admission_errors, 0);
        assert_eq!(serial.execution_queue_full, 0);
        let parallel = service.run(&trace, &Sched::new(4));
        assert_eq!(serial, parallel);
    }

    fn burst_trace(seed: u64, queries: usize) -> ArrivalTrace {
        ArrivalTrace::seeded(
            seed,
            &TraceParams {
                queries,
                mean_gap_cycles: 1_000,
                deadline_range: (u64::MAX / 8, u64::MAX / 4),
                datasets: POOL,
                fault_every: 0,
                faults_per_query: 0,
            },
        )
    }

    #[test]
    fn batched_core_matches_serial_outcomes_and_is_worker_invariant() {
        // A burst with generous deadlines: the batched core drains
        // multi-query windows and fuses same-kind arrivals, yet every
        // query must land the same terminal state and reached count as
        // under the serial core — batching changes *when* work runs,
        // never *what* it computes.
        let trace = burst_trace(0xBA7C, 8);
        let serial_log =
            Service::new(ServiceConfig::standard(Scale::new(0.02))).run(&trace, &Sched::serial());
        let batched = Service::new(ServiceConfig::batched(Scale::new(0.02)));
        let log = batched.run(&trace, &Sched::serial());
        assert!(
            log.outcomes.iter().any(|o| o.batch_peers > 1),
            "the burst must actually fuse something"
        );
        for (b, s) in log.outcomes.iter().zip(&serial_log.outcomes) {
            assert_eq!(b.disposition, Disposition::Completed, "query {}", b.id);
            assert_eq!(b.reached, s.reached, "query {}", b.id);
            assert_eq!(b.tenant, s.tenant);
        }
        // Fused units run the engine inside Phase B; the log must still
        // be byte-identical at any jobs x engine-workers point.
        let parallel = batched.run(&trace, &Sched::new(4));
        assert_eq!(log, parallel);
        let mut wide = ServiceConfig::batched(Scale::new(0.02));
        wide.engine_workers = 4;
        let wide_log = Service::new(wide).run(&trace, &Sched::new(2));
        assert_eq!(log, wide_log);
    }

    #[test]
    fn resubmission_arriving_before_quarantine_runs_on_its_own_budget() {
        // The resubmission lands while the original poison query is
        // still climbing its backoff ladder — no quarantine exists yet,
        // so it is admitted and burns its own retry budget instead of
        // being rejected at the door.
        let service = Service::new(ServiceConfig::standard(Scale::new(0.02)));
        let mut trace = tiny_trace(0x0DD);
        let poison = trace.push_poison(WorkloadKind::Bfs, Dataset::RoadNY, 0.05, 2, 100_000);
        let resub = trace.push_resubmission(poison, 1_000);
        let log = service.run(&trace, &Sched::serial());
        let r = &log.outcomes[resub as usize];
        assert_eq!(r.disposition, Disposition::Quarantined);
        assert_eq!(r.attempts, service.config().retry_budget + 1);
        assert!(r.recovery.is_some());
    }

    #[test]
    fn poison_query_is_quarantined_and_its_resubmission_rejected() {
        let service = Service::new(ServiceConfig::standard(Scale::new(0.02)));
        let mut trace = tiny_trace(0x0DD);
        let poison = trace.push_poison(WorkloadKind::Bfs, Dataset::RoadNY, 0.05, 2, 100_000);
        // The resubmission arrives well after the poison query's backoff
        // ladder (~630k cycles) has run dry, so it meets the quarantine.
        let resub = trace.push_resubmission(poison, 50_000_000);
        let log = service.run(&trace, &Sched::serial());
        let p = &log.outcomes[poison as usize];
        assert_eq!(p.disposition, Disposition::Quarantined);
        assert_eq!(p.attempts, service.config().retry_budget + 1);
        let evidence = p.recovery.as_ref().expect("quarantine keeps the log");
        assert!(evidence
            .attempts
            .iter()
            .all(|a| matches!(a.reason, AbortReason::Watchdog { .. })));
        let r = &log.outcomes[resub as usize];
        assert_eq!(r.disposition, Disposition::RejectedQuarantined);
        assert_eq!(r.attempts, 0);
        // Quarantine isolates the signature, not the service: every
        // other query still completes.
        for o in &log.outcomes {
            if o.id != poison && o.id != resub {
                assert_eq!(o.disposition, Disposition::Completed, "query {}", o.id);
            }
        }
    }
}
