//! Minimal table rendering (markdown + CSV) for the reproduction reports.
//!
//! Hand-rolled on purpose: the experiments emit small tables, and keeping
//! the dependency set to the blessed crates matters more than fancy
//! formatting.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// A simple rectangular table with named columns.
#[derive(Clone, Debug, Default)]
pub struct Table {
    title: String,
    columns: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given title and column headers.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Table {
        Table {
            title: title.into(),
            columns: columns.iter().map(|c| (*c).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the column count).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.columns.len(),
            "row width {} != column count {}",
            cells.len(),
            self.columns.len()
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Renders GitHub-flavoured markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "### {}\n", self.title);
        let _ = writeln!(out, "| {} |", self.columns.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            self.columns
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for row in &self.rows {
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        out
    }

    /// Renders CSV (header row first).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let escape = |s: &str| {
            if s.contains([',', '"', '\n']) {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_owned()
            }
        };
        let _ = writeln!(
            out,
            "{}",
            self.columns
                .iter()
                .map(|c| escape(c))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Writes `<stem>.md` and `<stem>.csv` under `dir`.
    pub fn write_to(&self, dir: &Path, stem: &str) -> io::Result<()> {
        std::fs::create_dir_all(dir)?;
        std::fs::write(dir.join(format!("{stem}.md")), self.to_markdown())?;
        std::fs::write(dir.join(format!("{stem}.csv")), self.to_csv())?;
        Ok(())
    }
}

/// Formats a float with engineering-friendly significant digits.
pub fn fmt_f64(v: f64) -> String {
    if v == 0.0 {
        "0".into()
    } else if v.abs() >= 100.0 {
        format!("{v:.1}")
    } else if v.abs() >= 1.0 {
        format!("{v:.3}")
    } else {
        format!("{v:.5}")
    }
}

/// Formats a ratio as the paper's `N.NNx` speedup notation.
pub fn fmt_speedup(v: f64) -> String {
    format!("{v:.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_shape() {
        let mut t = Table::new("T", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        let md = t.to_markdown();
        assert!(md.contains("### T"));
        assert!(md.contains("| a | b |"));
        assert!(md.contains("| 1 | 2 |"));
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new("T", &["a"]);
        t.row(vec!["x,y".into()]);
        assert!(t.to_csv().contains("\"x,y\""));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        Table::new("T", &["a", "b"]).row(vec!["1".into()]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f64(0.0), "0");
        assert_eq!(fmt_f64(0.00865), "0.00865");
        assert_eq!(fmt_f64(2.574), "2.574");
        assert_eq!(fmt_f64(144.03), "144.0");
        assert_eq!(fmt_speedup(2.574), "2.57x");
    }

    #[test]
    fn writes_files() {
        let dir = std::env::temp_dir().join("ptq_report_test");
        let mut t = Table::new("T", &["a"]);
        t.row(vec!["1".into()]);
        t.write_to(&dir, "t").unwrap();
        assert!(dir.join("t.md").exists());
        assert!(dir.join("t.csv").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
