//! `repro` — regenerates every table and figure of the paper.
//!
//! ```text
//! repro <experiment> [--scale F | --full] [--out DIR]
//!
//! experiments:
//!   table1 table2 table3 table4 table5 table6
//!   fig1 fig3 fig4 fig5
//!   scaling ablate-matrix ablate-chunk ablate-occupancy
//!   all          everything above
//!
//! options:
//!   --scale F    dataset scale in (0,1]   (default 0.05)
//!   --full       shorthand for --scale 1.0 (the paper's sizes; slow)
//!   --out DIR    where to write .md/.csv   (default results/)
//! ```
//!
//! Every table is printed to stdout and written as markdown + CSV.

use repro_bench::experiments::{
    ablate, common, fig1, fig3, fig4, fig5, scaling, table12, table34, table5, table6, verify,
};
use repro_bench::{Scale, Table};
use simt::GpuConfig;
use std::path::PathBuf;
use std::process::ExitCode;

struct Options {
    scale: Scale,
    out: PathBuf,
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut experiment: Option<String> = None;
    let mut scale = Scale::DEFAULT;
    let mut out = PathBuf::from("results");
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => match args.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(f) if f > 0.0 && f <= 1.0 => scale = Scale::new(f),
                _ => return usage("--scale needs a number in (0, 1]"),
            },
            "--full" => scale = Scale::FULL,
            "--out" => match args.next() {
                Some(dir) => out = PathBuf::from(dir),
                None => return usage("--out needs a directory"),
            },
            "--help" | "-h" => return usage(""),
            name if experiment.is_none() && !name.starts_with('-') => {
                experiment = Some(name.to_owned());
            }
            other => return usage(&format!("unknown argument {other:?}")),
        }
    }
    let Some(experiment) = experiment else {
        return usage("missing experiment name");
    };
    let opts = Options { scale, out };
    eprintln!(
        "# scale = {} (vertex counts at {:.1}% of the paper's)",
        opts.scale.fraction(),
        opts.scale.fraction() * 100.0
    );

    let known = run_experiment(&experiment, &opts);
    if !known {
        return usage(&format!("unknown experiment {experiment:?}"));
    }
    ExitCode::SUCCESS
}

fn usage(error: &str) -> ExitCode {
    if !error.is_empty() {
        eprintln!("error: {error}\n");
    }
    eprintln!(
        "usage: repro <experiment> [--scale F | --full] [--out DIR]\n\
         experiments: table1 table2 table3 table4 table5 table6 \
         fig1 fig3 fig4 fig5 scaling ablate-matrix ablate-stealing ablate-chunk \
         ablate-occupancy all"
    );
    if error.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn emit(table: &Table, opts: &Options, stem: &str) {
    println!("{}", table.to_markdown());
    if let Err(e) = table.write_to(&opts.out, stem) {
        eprintln!("warning: could not write {stem}: {e}");
    }
}

fn run_experiment(name: &str, opts: &Options) -> bool {
    match name {
        "table1" => emit(&table12::table1(opts.scale), opts, "table1"),
        "table2" => emit(&table12::table2(opts.scale), opts, "table2"),
        "table3" | "table4" => {
            let times = table34::measure(opts.scale);
            emit(&table34::table3(&times), opts, "table3");
            emit(&table34::table4(&times), opts, "table4");
        }
        "table5" => {
            let rows = table5::measure(opts.scale);
            emit(&table5::table(&rows), opts, "table5");
        }
        "table6" => {
            let rows = table6::measure(opts.scale);
            emit(&table6::table(&rows), opts, "table6");
        }
        "fig3" => {
            emit(&fig3::profile_table(opts.scale), opts, "fig3_profiles");
            emit(&fig3::saturation_table(opts.scale), opts, "fig3_saturation");
        }
        "fig1" | "fig5" => run_retry_figures(opts),
        "fig4" => run_fig4(opts),
        "verify" => {
            let verdicts = verify::run_checks(opts.scale);
            emit(&verify::table(&verdicts), opts, "verify");
            if verdicts.iter().any(|v| !v.pass) {
                eprintln!("verification FAILED");
                std::process::exit(1);
            }
            eprintln!("verification PASSED: every headline claim reproduces");
        }
        "scaling" => {
            emit(
                &scaling::table(opts.scale, &GpuConfig::fiji()),
                opts,
                "scaling_fiji",
            );
            emit(
                &scaling::table(opts.scale, &GpuConfig::spectre()),
                opts,
                "scaling_spectre",
            );
        }
        "ablate-matrix" => {
            emit(
                &ablate::matrix_table(opts.scale, &GpuConfig::fiji()),
                opts,
                "ablate_matrix_fiji",
            );
        }
        "ablate-stealing" => {
            emit(
                &ablate::stealing_table(opts.scale, &GpuConfig::fiji()),
                opts,
                "ablate_stealing_fiji",
            );
        }
        "ablate-chunk" => {
            emit(
                &ablate::chunk_table(opts.scale, &GpuConfig::fiji()),
                opts,
                "ablate_chunk_fiji",
            );
            emit(
                &ablate::chunk_table(opts.scale, &GpuConfig::spectre()),
                opts,
                "ablate_chunk_spectre",
            );
        }
        "ablate-occupancy" => {
            emit(
                &ablate::occupancy_table(opts.scale, &GpuConfig::fiji()),
                opts,
                "ablate_occupancy_fiji",
            );
        }
        "all" => {
            for exp in [
                "table1",
                "table2",
                "table3",
                "table5",
                "table6",
                "fig3",
                "fig1",
                "fig4",
                "scaling",
                "ablate-matrix",
                "ablate-stealing",
                "ablate-chunk",
                "ablate-occupancy",
            ] {
                eprintln!("== {exp} ==");
                run_experiment(exp, opts);
            }
        }
        _ => return false,
    }
    true
}

/// Figures 1 and 5 share their sweeps (BASE failures and BASE/RF-AN
/// atomic ratios over the same workgroup grids).
fn run_retry_figures(opts: &Options) {
    for (gpu, _) in common::platforms() {
        let sweeps: Vec<_> = ptq_graph::Dataset::FIG5_THREE
            .into_iter()
            .map(|dataset| {
                eprintln!("  sweeping {} on {} ...", dataset.spec().name, gpu.name);
                let graph = dataset.build(opts.scale.fraction());
                let points = common::sweep_dataset(&gpu, &graph, &gpu.workgroup_sweep());
                (dataset, points)
            })
            .collect();
        let gpu_l = gpu.name.to_lowercase();
        emit(
            &fig1::panel_table(&gpu, &sweeps),
            opts,
            &format!("fig1_{gpu_l}"),
        );
        emit(
            &fig5::panel_table(&gpu, &sweeps),
            opts,
            &format!("fig5_{gpu_l}"),
        );
        if let Err(e) =
            fig1::panel_chart(&gpu, &sweeps).write_to(&opts.out, &format!("fig1_{gpu_l}"))
        {
            eprintln!("warning: fig1 svg: {e}");
        }
        if let Err(e) =
            fig5::panel_chart(&gpu, &sweeps).write_to(&opts.out, &format!("fig5_{gpu_l}"))
        {
            eprintln!("warning: fig5 svg: {e}");
        }
    }
}

fn run_fig4(opts: &Options) {
    for (gpu, _) in common::platforms() {
        for dataset in ptq_graph::Dataset::MAIN_SIX {
            eprintln!("  fig4 panel: {} / {} ...", gpu.name, dataset.spec().name);
            let points = fig4::sweep_panel(&gpu, dataset, opts.scale);
            let table = fig4::panel_table(&gpu, dataset, &points);
            let stem = format!(
                "fig4_{}_{}",
                gpu.name.to_lowercase(),
                dataset.spec().name.replace(['.', '-'], "_").to_lowercase()
            );
            emit(&table, opts, &stem);
            if let Err(e) = fig4::panel_chart(&gpu, dataset, &points).write_to(&opts.out, &stem) {
                eprintln!("warning: fig4 svg: {e}");
            }
            if dataset == ptq_graph::Dataset::Synthetic {
                let max = *gpu.workgroup_sweep().last().unwrap();
                eprintln!(
                    "  RF/AN scaling efficiency on synthetic/{}: {:.2} of ideal",
                    gpu.name,
                    fig4::rfan_scaling_efficiency(&points, max)
                );
            }
        }
    }
}
