//! `repro` — regenerates every table and figure of the paper.
//!
//! ```text
//! repro <experiment> [--scale F | --full] [--jobs N] [--engine-workers N] [--out DIR]
//!
//! experiments:
//!   table1 table2 table3 table4 table5 table6
//!   fig1 fig3 fig4 fig5
//!   scaling ablate-matrix ablate-stealing ablate-chunk ablate-occupancy
//!   chaos        seeded fault injection + checkpoint/resume recovery
//!   workloads    all four workloads (BFS/SSSP/CC/PR-delta) vs oracles
//!   giant        streamed vs in-memory construction at giant scale
//!   serve        overload-safe serving core: admission, deadlines,
//!                retry/backoff, quarantine over a seeded arrival trace
//!   verify       machine-checked reproduction verdicts
//!   all          everything above (except verify and giant)
//!
//! options:
//!   --scale F    dataset scale in (0,1]   (default 0.05; giant 1.0)
//!   --full       shorthand for --scale 1.0 (the paper's sizes; slow)
//!   --jobs N     worker-thread cap (default 1; 0 = one per CPU).
//!                The effective count never exceeds the machine's
//!                available parallelism — points are CPU-bound, so
//!                oversubscribing only adds scheduling overhead.
//!   --engine-workers N
//!                plan-phase worker threads *inside* each simulation
//!                run (default 1 = the serial round loop; 0 = fill the
//!                cores `--jobs` leaves free). Clamped so
//!                jobs x engine-workers never exceeds the host's
//!                available parallelism. Results are byte-identical at
//!                any value (DESIGN.md section 12).
//!   --out DIR    where to write .md/.csv   (default results/)
//! ```
//!
//! Every table is printed to stdout and written as markdown + CSV.
//! Tables are byte-identical at any `--jobs` count. Each run also writes
//! `BENCH_repro.json` (wall-clock per experiment, simulated-round
//! throughput) next to the tables so performance has a trajectory.

use repro_bench::experiments::{
    ablate, chaos, common, fig1, fig3, fig4, fig5, giant, scaling, serve, table12, table34, table5,
    table6, verify, workloads,
};
use repro_bench::{Scale, Sched, Table};
use simt::GpuConfig;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

struct Options {
    scale: Scale,
    out: PathBuf,
    sched: Sched,
    /// Effective plan-phase workers per simulation run (post-clamp).
    engine_workers: usize,
}

/// Per-experiment (name, wall-clock seconds, simulated rounds), in
/// execution order.
type Timings = Vec<(String, f64, u64)>;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut experiment: Option<String> = None;
    let mut scale: Option<Scale> = None;
    let mut out = PathBuf::from("results");
    let mut sched = Sched::serial();
    let mut engine_workers_requested: Option<usize> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => match args.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(f) if f > 0.0 && f <= 1.0 => scale = Some(Scale::new(f)),
                _ => return usage("--scale needs a number in (0, 1]"),
            },
            "--full" => scale = Some(Scale::FULL),
            "--jobs" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(0) => sched = Sched::auto(),
                Some(n) => sched = Sched::new(n),
                None => return usage("--jobs needs a non-negative integer"),
            },
            "--engine-workers" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) => engine_workers_requested = Some(n),
                None => return usage("--engine-workers needs a non-negative integer"),
            },
            "--out" => match args.next() {
                Some(dir) => out = PathBuf::from(dir),
                None => return usage("--out needs a directory"),
            },
            "--help" | "-h" => return usage(""),
            name if experiment.is_none() && !name.starts_with('-') => {
                experiment = Some(name.to_owned());
            }
            other => return usage(&format!("unknown argument {other:?}")),
        }
    }
    let Some(experiment) = experiment else {
        return usage("missing experiment name");
    };
    // `giant` is pinned at full scale unless overridden — the experiment
    // exists to measure the >=100M-edge regime, where the naive leg's
    // O(E) edge-list materialization actually bites and the memory
    // envelope is worth reporting. Every other experiment keeps the
    // quick default.
    let scale = scale.unwrap_or(if experiment == "giant" {
        Scale::FULL
    } else {
        Scale::DEFAULT
    });
    // Install the inner (per-run plan phase) worker budget before any
    // experiment builds a PtConfig; the clamp keeps outer x inner within
    // the host's available parallelism (common::configure_engine_workers).
    let engine_workers =
        common::configure_engine_workers(engine_workers_requested.unwrap_or(1), sched.jobs());
    let opts = Options {
        scale,
        out,
        sched,
        engine_workers,
    };
    eprintln!(
        "# scale = {} (vertex counts at {:.1}% of the paper's), jobs = {}, \
         engine workers = {} ({} host cores)",
        opts.scale.fraction(),
        opts.scale.fraction() * 100.0,
        opts.sched.jobs(),
        opts.engine_workers,
        common::host_cores(),
    );

    let start = Instant::now();
    let mut timings = Timings::new();
    let known = run_experiment(&experiment, &opts, &mut timings);
    if !known {
        return usage(&format!("unknown experiment {experiment:?}"));
    }
    let total = start.elapsed().as_secs_f64();
    if timings.is_empty() {
        timings.push((experiment.clone(), total, common::rounds_simulated()));
    }
    write_bench(&opts, &experiment, total, &timings);
    ExitCode::SUCCESS
}

fn usage(error: &str) -> ExitCode {
    if !error.is_empty() {
        eprintln!("error: {error}\n");
    }
    eprintln!(
        "usage: repro <experiment> [--scale F | --full] [--jobs N] [--engine-workers N] [--out DIR]\n\
         experiments: table1 table2 table3 table4 table5 table6 \
         fig1 fig3 fig4 fig5 scaling ablate-matrix ablate-stealing ablate-chunk \
         ablate-occupancy chaos workloads giant serve verify all"
    );
    if error.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Writes `BENCH_repro.json` into the output directory: total and
/// per-experiment wall-clock plus simulated-round throughput, the
/// process-wide slowest simulation point, and the effective worker
/// count (`--jobs 0` resolves to one per CPU; requests above the
/// available parallelism are clamped to it). The schema is documented
/// in `EXPERIMENTS.md`. Timings naturally vary run to run — every
/// *table* stays byte-identical.
fn write_bench(opts: &Options, command: &str, total: f64, timings: &Timings) {
    let rounds = common::rounds_simulated();
    let per_experiment: Vec<String> = timings
        .iter()
        .map(|(name, secs, exp_rounds)| {
            format!(
                "    {{\"name\": \"{name}\", \"seconds\": {secs:.3}, \
                 \"rounds\": {exp_rounds}, \"rounds_per_second\": {:.0}}}",
                *exp_rounds as f64 / secs.max(1e-9),
            )
        })
        .collect();
    let slowest = match common::slowest_point() {
        Some((name, secs)) => {
            format!("{{\"name\": \"{name}\", \"seconds\": {secs:.3}}}")
        }
        None => "null".to_owned(),
    };
    let recovery = format!(
        "{{\"faults_injected\": {}, \"aborts_recovered\": {}, \"rounds_replayed\": {}}}",
        common::faults_injected(),
        common::aborts_recovered(),
        common::rounds_replayed(),
    );
    let workload_entries: Vec<String> = common::workload_stats()
        .iter()
        .map(|(name, w_rounds, wall, retry_free)| {
            format!(
                "    {{\"name\": \"{name}\", \"rounds\": {w_rounds}, \
                 \"rounds_per_second\": {:.0}, \"retry_free\": {retry_free}}}",
                *w_rounds as f64 / wall.max(1e-9),
            )
        })
        .collect();
    let workloads_json = if workload_entries.is_empty() {
        "[]".to_owned()
    } else {
        format!("[\n{}\n  ]", workload_entries.join(",\n"))
    };
    // Engine-profile aggregate (events summed, footprint gauges maxed
    // across every profiled run) plus the process peak RSS: the memory
    // envelope of the run. Null if nothing recorded a profile.
    let profile = match common::profile_summary() {
        Some((p, runs, recycled)) => format!(
            "{{\"runs\": {runs}, \"arena_recycled_runs\": {recycled}, \
             \"peak_arena_words\": {}, \"peak_meta_bytes\": {}, \
             \"peak_demand_zeroed_words\": {}, \"park_events\": {}, \
             \"park_replay_cycles\": {}, \"peak_line_table_bytes\": {}, \
             \"peak_round_lines\": {}, \"peak_rss_bytes\": {}}}",
            p.arena_words,
            p.meta_bytes,
            p.demand_zeroed_words,
            p.park_events,
            p.park_replay_cycles,
            p.line_table_bytes,
            p.peak_round_lines,
            common::peak_rss_bytes(),
        ),
        None => "null".to_owned(),
    };
    // Giant-pipeline wall clock (tuned vs naive construction+setup,
    // plus the timed engine-par BFS leg).
    let giant = match common::giant_bench() {
        Some(g) => format!(
            "{{\"edges\": {}, \"naive_build_seconds\": {:.3}, \
             \"naive_setup_seconds\": {:.3}, \"tuned_build_seconds\": {:.3}, \
             \"tuned_setup_seconds\": {:.3}, \"naive_edges_per_second\": {:.0}, \
             \"tuned_edges_per_second\": {:.0}, \"speedup\": {:.3}, \
             \"par_serial_seconds\": {:.3}, \"par_parallel_seconds\": {:.3}, \
             \"par_workers\": {}, \"par_host_cores\": {}, \"par_speedup\": {:.3}}}",
            g.edges,
            g.naive_build_seconds,
            g.naive_setup_seconds,
            g.tuned_build_seconds,
            g.tuned_setup_seconds,
            g.naive_edges_per_second(),
            g.tuned_edges_per_second(),
            g.speedup(),
            g.par_serial_seconds,
            g.par_parallel_seconds,
            g.par_workers,
            g.host_cores,
            g.par_speedup(),
        ),
        None => "null".to_owned(),
    };
    // Serve legs: everything in this section is simulated (cycles,
    // counts, rates over cycles), so unlike the wall-clock sections it
    // is byte-identical across --jobs and --engine-workers — CI
    // extracts and diffs it (serve-smoke).
    // An absent percentile (a leg that completed nothing) emits a JSON
    // null, not a fake 0.
    let opt_cycles = |v: Option<u64>| v.map_or_else(|| "null".to_owned(), |v| v.to_string());
    let serve_entries: Vec<String> = common::serve_bench()
        .iter()
        .map(|b| {
            format!(
                "    {{\"leg\": \"{}\", \"queries\": {}, \"completed\": {}, \
                 \"retried\": {}, \"batched\": {}, \"shed\": {}, \"quarantined\": {}, \
                 \"rejected_queue_full\": {}, \"rejected_quarantined\": {}, \
                 \"p50_latency_cycles\": {}, \"p99_latency_cycles\": {}, \
                 \"makespan_cycles\": {}, \"throughput_qps\": {:.3}, \
                 \"shed_rate\": {:.4}, \"quarantine_rate\": {:.4}}}",
                b.leg,
                b.queries,
                b.completed,
                b.retried,
                b.batched,
                b.shed,
                b.quarantined,
                b.rejected_queue_full,
                b.rejected_quarantined,
                opt_cycles(b.p50_latency_cycles),
                opt_cycles(b.p99_latency_cycles),
                b.makespan_cycles,
                b.throughput_qps,
                b.shed_rate,
                b.quarantine_rate,
            )
        })
        .collect();
    let serve_json = if serve_entries.is_empty() {
        "null".to_owned()
    } else {
        format!("[\n{}\n  ]", serve_entries.join(",\n"))
    };
    // Top-level wall-clock summary: how long the whole invocation took
    // and what parallelism (outer jobs x inner engine workers, host
    // cores) it ran with. CI fails a BENCH artifact that lacks this.
    let wall_clock = format!(
        "{{\"total_seconds\": {total:.3}, \"jobs\": {}, \
         \"engine_workers_requested\": {}, \"engine_workers\": {}, \
         \"host_cores\": {}}}",
        opts.sched.jobs(),
        common::engine_workers_requested(),
        opts.engine_workers,
        common::host_cores(),
    );
    let json = format!(
        "{{\n  \"command\": \"{command}\",\n  \"scale\": {},\n  \"jobs\": {},\n  \
         \"engine_workers\": {},\n  \"wall_clock\": {wall_clock},\n  \
         \"total_seconds\": {total:.3},\n  \"rounds_simulated\": {rounds},\n  \
         \"rounds_per_second\": {:.0},\n  \"slowest_point\": {slowest},\n  \
         \"recovery\": {recovery},\n  \"workloads\": {workloads_json},\n  \
         \"profile\": {profile},\n  \"giant\": {giant},\n  \
         \"serve\": {serve_json},\n  \
         \"experiments\": [\n{}\n  ]\n}}\n",
        opts.scale.fraction(),
        opts.sched.jobs(),
        opts.engine_workers,
        rounds as f64 / total.max(1e-9),
        per_experiment.join(",\n"),
    );
    if let Err(e) = std::fs::create_dir_all(&opts.out)
        .and_then(|()| std::fs::write(opts.out.join("BENCH_repro.json"), &json))
    {
        eprintln!("warning: could not write BENCH_repro.json: {e}");
        return;
    }
    eprintln!(
        "# {total:.1}s wall, {rounds} rounds simulated -> {}",
        opts.out.join("BENCH_repro.json").display()
    );
}

fn emit(table: &Table, opts: &Options, stem: &str) {
    println!("{}", table.to_markdown());
    if let Err(e) = table.write_to(&opts.out, stem) {
        eprintln!("warning: could not write {stem}: {e}");
    }
}

fn run_experiment(name: &str, opts: &Options, timings: &mut Timings) -> bool {
    let sched = &opts.sched;
    match name {
        "table1" => emit(&table12::table1(opts.scale, sched), opts, "table1"),
        "table2" => emit(&table12::table2(opts.scale, sched), opts, "table2"),
        "table3" | "table4" => {
            let times = table34::measure(opts.scale, sched);
            emit(&table34::table3(&times), opts, "table3");
            emit(&table34::table4(&times), opts, "table4");
        }
        "table5" => {
            let rows = table5::measure(opts.scale, sched);
            emit(&table5::table(&rows), opts, "table5");
        }
        "table6" => {
            let rows = table6::measure(opts.scale, sched);
            emit(&table6::table(&rows), opts, "table6");
        }
        "fig3" => {
            emit(
                &fig3::profile_table(opts.scale, sched),
                opts,
                "fig3_profiles",
            );
            emit(
                &fig3::saturation_table(opts.scale, sched),
                opts,
                "fig3_saturation",
            );
        }
        "fig1" | "fig5" => run_retry_figures(opts),
        "fig4" => run_fig4(opts),
        "verify" => {
            let verdicts = verify::run_checks(opts.scale, sched);
            emit(&verify::table(&verdicts), opts, "verify");
            if verdicts.iter().any(|v| !v.pass) {
                eprintln!("verification FAILED");
                std::process::exit(1);
            }
            eprintln!("verification PASSED: every headline claim reproduces");
        }
        "scaling" => {
            emit(
                &scaling::table(opts.scale, &GpuConfig::fiji(), sched),
                opts,
                "scaling_fiji",
            );
            emit(
                &scaling::table(opts.scale, &GpuConfig::spectre(), sched),
                opts,
                "scaling_spectre",
            );
        }
        "ablate-matrix" => {
            emit(
                &ablate::matrix_table(opts.scale, &GpuConfig::fiji(), sched),
                opts,
                "ablate_matrix_fiji",
            );
        }
        "ablate-stealing" => {
            emit(
                &ablate::stealing_table(opts.scale, &GpuConfig::fiji(), sched),
                opts,
                "ablate_stealing_fiji",
            );
        }
        "ablate-chunk" => {
            emit(
                &ablate::chunk_table(opts.scale, &GpuConfig::fiji(), sched),
                opts,
                "ablate_chunk_fiji",
            );
            emit(
                &ablate::chunk_table(opts.scale, &GpuConfig::spectre(), sched),
                opts,
                "ablate_chunk_spectre",
            );
        }
        "ablate-occupancy" => {
            emit(
                &ablate::occupancy_table(opts.scale, &GpuConfig::fiji(), sched),
                opts,
                "ablate_occupancy_fiji",
            );
        }
        "chaos" => {
            let rows = chaos::measure(opts.scale, sched);
            emit(&chaos::table(&rows), opts, "chaos");
        }
        "workloads" => {
            let rows = workloads::measure(opts.scale, sched);
            emit(&workloads::table(&rows), opts, "workloads");
        }
        "serve" => {
            let results = serve::measure(opts.scale, sched);
            for (leg, log) in &results {
                emit(
                    &log.table(&format!("Serve [{}]: per-query outcomes", leg.name)),
                    opts,
                    &format!("serve_{}", leg.name),
                );
                emit(
                    &log.fairness_table(&format!(
                        "Serve [{}]: per-class tenant fairness (Jain over completion rates)",
                        leg.name
                    )),
                    opts,
                    &format!("serve_fairness_{}", leg.name),
                );
            }
            emit(&serve::summary_table(&results), opts, "serve_summary");
        }
        // Not part of "all": the giant pipeline is serial by design (the
        // eager-zeroing A/B toggle is process-global) and its pinned
        // full-scale default builds a 134M-edge graph twice.
        "giant" => {
            let rows = giant::measure(opts.scale);
            emit(&giant::table(&rows), opts, "giant");
        }
        "all" => {
            for exp in [
                "table1",
                "table2",
                "table3",
                "table5",
                "table6",
                "fig3",
                "fig1",
                "fig4",
                "scaling",
                "ablate-matrix",
                "ablate-stealing",
                "ablate-chunk",
                "ablate-occupancy",
                "chaos",
                "workloads",
                "serve",
            ] {
                eprintln!("== {exp} ==");
                let start = Instant::now();
                let rounds_before = common::rounds_simulated();
                run_experiment(exp, opts, timings);
                timings.push((
                    exp.to_owned(),
                    start.elapsed().as_secs_f64(),
                    common::rounds_simulated() - rounds_before,
                ));
            }
        }
        _ => return false,
    }
    true
}

/// Figures 1 and 5 share their sweeps (BASE failures and BASE/RF-AN
/// atomic ratios over the same workgroup grids).
fn run_retry_figures(opts: &Options) {
    for (gpu, _) in common::platforms() {
        let sweeps: Vec<_> = ptq_graph::Dataset::FIG5_THREE
            .into_iter()
            .map(|dataset| {
                eprintln!("  sweeping {} on {} ...", dataset.spec().name, gpu.name);
                let graph = common::DatasetCache::global().get(dataset, opts.scale);
                let points =
                    common::sweep_dataset(&gpu, &graph, &gpu.workgroup_sweep(), &opts.sched);
                (dataset, points)
            })
            .collect();
        let gpu_l = gpu.name.to_lowercase();
        emit(
            &fig1::panel_table(&gpu, &sweeps),
            opts,
            &format!("fig1_{gpu_l}"),
        );
        emit(
            &fig5::panel_table(&gpu, &sweeps),
            opts,
            &format!("fig5_{gpu_l}"),
        );
        if let Err(e) =
            fig1::panel_chart(&gpu, &sweeps).write_to(&opts.out, &format!("fig1_{gpu_l}"))
        {
            eprintln!("warning: fig1 svg: {e}");
        }
        if let Err(e) =
            fig5::panel_chart(&gpu, &sweeps).write_to(&opts.out, &format!("fig5_{gpu_l}"))
        {
            eprintln!("warning: fig5 svg: {e}");
        }
    }
}

fn run_fig4(opts: &Options) {
    for (gpu, _) in common::platforms() {
        for dataset in ptq_graph::Dataset::MAIN_SIX {
            eprintln!("  fig4 panel: {} / {} ...", gpu.name, dataset.spec().name);
            let points = fig4::sweep_panel(&gpu, dataset, opts.scale, &opts.sched);
            let table = fig4::panel_table(&gpu, dataset, &points);
            let stem = format!(
                "fig4_{}_{}",
                gpu.name.to_lowercase(),
                dataset.spec().name.replace(['.', '-'], "_").to_lowercase()
            );
            emit(&table, opts, &stem);
            if let Err(e) = fig4::panel_chart(&gpu, dataset, &points).write_to(&opts.out, &stem) {
                eprintln!("warning: fig4 svg: {e}");
            }
            if dataset == ptq_graph::Dataset::Synthetic {
                let max = *gpu.workgroup_sweep().last().unwrap();
                eprintln!(
                    "  RF/AN scaling efficiency on synthetic/{}: {:.2} of ideal",
                    gpu.name,
                    fig4::rfan_scaling_efficiency(&points, max)
                );
            }
        }
    }
}
