//! Calibration probe: variant time ratios vs the paper's Table 3/4.
use gpu_queue::Variant;
use pt_bfs::{run_bfs, PtConfig};
use ptq_graph::Dataset;
use simt::GpuConfig;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.05);
    for (gpu, wgs) in [(GpuConfig::fiji(), 224usize), (GpuConfig::spectre(), 32)] {
        for ds in [
            Dataset::Synthetic,
            Dataset::SocLiveJournal1,
            Dataset::RoadNY,
        ] {
            let g = ds.build(scale);
            let mut secs = vec![];
            let mut sched = vec![];
            for v in Variant::ALL {
                let run = run_bfs(&gpu, &g, 0, &PtConfig::new(v, wgs)).unwrap();
                secs.push(run.seconds);
                sched.push(run.metrics.scheduler_atomics);
            }
            println!(
                "{} {}: BASE/RFAN={:.2}x AN/RFAN={:.2}x | fig5 ratio={:.1}",
                gpu.name,
                ds.spec().name,
                secs[0] / secs[2],
                secs[1] / secs[2],
                sched[0] as f64 / sched[2].max(1) as f64
            );
        }
    }
}
