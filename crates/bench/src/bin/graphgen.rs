//! `graphgen` — generates the calibrated datasets as real files in the
//! formats the original benchmarks consume.
//!
//! ```text
//! graphgen <dataset> --format {dimacs|snap|rodinia} [--scale F] [--out PATH]
//!
//! datasets: synthetic gplus livejournal ny lks usa
//!           rodinia4096 rodinia65536 rodinia1m
//! ```
//!
//! The emitted files round-trip through `ptq_graph::io` and can be fed to
//! external tools (or back into this harness in place of the generators
//! when the real SNAP/DIMACS data is available for comparison).

use ptq_graph::{io, Dataset};
use std::fs::File;
use std::io::BufWriter;
use std::process::ExitCode;

fn parse_dataset(name: &str) -> Option<Dataset> {
    Some(match name {
        "synthetic" => Dataset::Synthetic,
        "gplus" => Dataset::GplusCombined,
        "livejournal" => Dataset::SocLiveJournal1,
        "ny" => Dataset::RoadNY,
        "lks" => Dataset::RoadLKS,
        "usa" => Dataset::RoadUSA,
        "rodinia4096" => Dataset::RodiniaGraph4096,
        "rodinia65536" => Dataset::RodiniaGraph65536,
        "rodinia1m" => Dataset::RodiniaGraph1M,
        _ => return None,
    })
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut dataset = None;
    let mut format = String::from("snap");
    let mut scale = 0.05f64;
    let mut out: Option<String> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--format" => match args.next() {
                Some(f) => format = f,
                None => return usage("--format needs a value"),
            },
            "--scale" => match args.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(f) if f > 0.0 && f <= 1.0 => scale = f,
                _ => return usage("--scale needs a number in (0, 1]"),
            },
            "--out" => out = args.next(),
            "--help" | "-h" => return usage(""),
            name if dataset.is_none() && !name.starts_with('-') => {
                dataset = parse_dataset(name);
                if dataset.is_none() {
                    return usage(&format!("unknown dataset {name:?}"));
                }
            }
            other => return usage(&format!("unknown argument {other:?}")),
        }
    }
    let Some(dataset) = dataset else {
        return usage("missing dataset name");
    };

    let extension = match format.as_str() {
        "dimacs" => "gr",
        "snap" => "txt",
        "rodinia" => "rodinia.txt",
        other => return usage(&format!("unknown format {other:?}")),
    };
    let path = out.unwrap_or_else(|| {
        format!(
            "{}_{:.0}pct.{extension}",
            dataset.spec().name.replace(['.', '-'], "_"),
            scale * 100.0
        )
    });

    eprintln!(
        "generating {} at {:.1}% scale ...",
        dataset.spec().name,
        scale * 100.0
    );
    let graph = dataset.build(scale);
    let stats = graph.degree_stats();
    eprintln!(
        "  {} vertices, {} edges | degree min {} max {} avg {:.2} std {:.2}",
        graph.num_vertices(),
        graph.num_edges(),
        stats.min,
        stats.max,
        stats.avg,
        stats.std
    );

    let file = match File::create(&path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: cannot create {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut writer = BufWriter::new(file);
    let result = match format.as_str() {
        "dimacs" => io::dimacs::write_gr(&graph, &mut writer),
        "snap" => io::snap::write_edge_list(&graph, &mut writer),
        "rodinia" => io::rodinia::write_rodinia(&graph, dataset.source(), &mut writer),
        _ => unreachable!("validated above"),
    };
    if let Err(e) = result {
        eprintln!("error: write failed: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {path}");
    ExitCode::SUCCESS
}

fn usage(error: &str) -> ExitCode {
    if !error.is_empty() {
        eprintln!("error: {error}\n");
    }
    eprintln!(
        "usage: graphgen <dataset> [--format dimacs|snap|rodinia] [--scale F] [--out PATH]\n\
         datasets: synthetic gplus livejournal ny lks usa rodinia4096 rodinia65536 rodinia1m"
    );
    if error.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
