//! `repro-bench` — the reproduction harness.
//!
//! Library functions that regenerate every table and figure of the paper;
//! the `repro` binary is a thin CLI over them, and the integration tests
//! assert the paper's qualitative claims (who wins, by roughly what
//! factor, where the crossovers are) at reduced scale.
//!
//! Every experiment takes a [`Scale`] so the full-size datasets (tens of
//! millions of vertices) can be shrunk for CI while preserving shape.

pub mod experiments;
pub mod plot;
pub mod report;
pub mod scale;
pub mod sched;
pub mod serve;

pub use plot::{Chart, Series};
pub use report::Table;
pub use scale::Scale;
pub use sched::Sched;
