//! Minimal SVG line-chart rendering for the reproduced figures.
//!
//! Hand-rolled (no plotting dependency): the figures here are simple
//! log-log or lin-log line charts — workgroups on the x-axis, time /
//! speedup / retry counts on the y-axis — and a few hundred lines of SVG
//! beat a dependency tree. The output opens in any browser and diffs
//! cleanly in review.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// One named line of a chart.
#[derive(Clone, Debug)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// `(x, y)` points; x and y must be positive when the corresponding
    /// axis is logarithmic.
    pub points: Vec<(f64, f64)>,
}

/// Axis scale.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Linear axis.
    Linear,
    /// Base-2 logarithmic axis (the natural scale for workgroup sweeps).
    Log2,
}

/// A simple line chart.
#[derive(Clone, Debug)]
pub struct Chart {
    title: String,
    x_label: String,
    y_label: String,
    x_scale: Scale,
    y_scale: Scale,
    series: Vec<Series>,
}

const WIDTH: f64 = 640.0;
const HEIGHT: f64 = 420.0;
const MARGIN_L: f64 = 70.0;
const MARGIN_R: f64 = 150.0;
const MARGIN_T: f64 = 40.0;
const MARGIN_B: f64 = 50.0;
const PALETTE: [&str; 6] = [
    "#d62728", "#1f77b4", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b",
];

impl Chart {
    /// Creates an empty chart.
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
        x_scale: Scale,
        y_scale: Scale,
    ) -> Chart {
        Chart {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            x_scale,
            y_scale,
            series: Vec::new(),
        }
    }

    /// Adds a line.
    ///
    /// # Panics
    /// Panics if a coordinate is non-positive on a logarithmic axis.
    pub fn series(&mut self, name: impl Into<String>, points: Vec<(f64, f64)>) -> &mut Self {
        if self.x_scale == Scale::Log2 {
            assert!(
                points.iter().all(|p| p.0 > 0.0),
                "log2 x-axis needs positive x"
            );
        }
        if self.y_scale == Scale::Log2 {
            assert!(
                points.iter().all(|p| p.1 > 0.0),
                "log2 y-axis needs positive y"
            );
        }
        self.series.push(Series {
            name: name.into(),
            points,
        });
        self
    }

    fn transform(scale: Scale, v: f64) -> f64 {
        match scale {
            Scale::Linear => v,
            Scale::Log2 => v.log2(),
        }
    }

    /// Renders the chart as a standalone SVG document.
    pub fn to_svg(&self) -> String {
        let mut all_x: Vec<f64> = Vec::new();
        let mut all_y: Vec<f64> = Vec::new();
        for s in &self.series {
            for &(x, y) in &s.points {
                all_x.push(Self::transform(self.x_scale, x));
                all_y.push(Self::transform(self.y_scale, y));
            }
        }
        let (x_min, x_max) = bounds(&all_x);
        let (y_min, y_max) = bounds(&all_y);
        let plot_w = WIDTH - MARGIN_L - MARGIN_R;
        let plot_h = HEIGHT - MARGIN_T - MARGIN_B;
        let px = |x: f64| MARGIN_L + (x - x_min) / (x_max - x_min).max(1e-12) * plot_w;
        let py = |y: f64| HEIGHT - MARGIN_B - (y - y_min) / (y_max - y_min).max(1e-12) * plot_h;

        let mut svg = String::new();
        let _ = write!(
            svg,
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" height="{HEIGHT}" font-family="sans-serif" font-size="12">"#
        );
        let _ = write!(
            svg,
            r#"<rect width="{WIDTH}" height="{HEIGHT}" fill="white"/>"#
        );
        let _ = write!(
            svg,
            r#"<text x="{}" y="20" text-anchor="middle" font-size="14" font-weight="bold">{}</text>"#,
            WIDTH / 2.0,
            escape(&self.title)
        );
        // Axes box.
        let _ = write!(
            svg,
            r##"<rect x="{MARGIN_L}" y="{MARGIN_T}" width="{plot_w}" height="{plot_h}" fill="none" stroke="#444"/>"##
        );
        // Ticks: 5 per axis at transformed-space intervals.
        for i in 0..=4 {
            let tx = x_min + (x_max - x_min) * f64::from(i) / 4.0;
            let x_pix = px(tx);
            let label = match self.x_scale {
                Scale::Linear => format!("{tx:.0}"),
                Scale::Log2 => format!("{:.0}", tx.exp2()),
            };
            let _ = write!(
                svg,
                r##"<line x1="{x_pix}" y1="{}" x2="{x_pix}" y2="{}" stroke="#444"/><text x="{x_pix}" y="{}" text-anchor="middle">{label}</text>"##,
                HEIGHT - MARGIN_B,
                HEIGHT - MARGIN_B + 5.0,
                HEIGHT - MARGIN_B + 20.0
            );
            let ty = y_min + (y_max - y_min) * f64::from(i) / 4.0;
            let y_pix = py(ty);
            let label = match self.y_scale {
                Scale::Linear => format!("{ty:.1}"),
                Scale::Log2 => format_si(ty.exp2()),
            };
            let _ = write!(
                svg,
                r##"<line x1="{}" y1="{y_pix}" x2="{MARGIN_L}" y2="{y_pix}" stroke="#444"/><text x="{}" y="{}" text-anchor="end">{label}</text>"##,
                MARGIN_L - 5.0,
                MARGIN_L - 8.0,
                y_pix + 4.0
            );
        }
        // Axis labels.
        let _ = write!(
            svg,
            r#"<text x="{}" y="{}" text-anchor="middle">{}</text>"#,
            MARGIN_L + plot_w / 2.0,
            HEIGHT - 10.0,
            escape(&self.x_label)
        );
        let _ = write!(
            svg,
            r#"<text x="15" y="{}" text-anchor="middle" transform="rotate(-90 15 {})">{}</text>"#,
            MARGIN_T + plot_h / 2.0,
            MARGIN_T + plot_h / 2.0,
            escape(&self.y_label)
        );
        // Series.
        for (i, s) in self.series.iter().enumerate() {
            let color = PALETTE[i % PALETTE.len()];
            let path: Vec<String> = s
                .points
                .iter()
                .map(|&(x, y)| {
                    format!(
                        "{:.1},{:.1}",
                        px(Self::transform(self.x_scale, x)),
                        py(Self::transform(self.y_scale, y))
                    )
                })
                .collect();
            let _ = write!(
                svg,
                r#"<polyline points="{}" fill="none" stroke="{color}" stroke-width="2"/>"#,
                path.join(" ")
            );
            for p in &path {
                let mut it = p.split(',');
                let (cx, cy) = (it.next().unwrap(), it.next().unwrap());
                let _ = write!(svg, r#"<circle cx="{cx}" cy="{cy}" r="3" fill="{color}"/>"#);
            }
            // Legend entry.
            let ly = MARGIN_T + 16.0 * i as f64 + 10.0;
            let lx = WIDTH - MARGIN_R + 10.0;
            let _ = write!(
                svg,
                r#"<line x1="{lx}" y1="{ly}" x2="{}" y2="{ly}" stroke="{color}" stroke-width="2"/><text x="{}" y="{}">{}</text>"#,
                lx + 18.0,
                lx + 24.0,
                ly + 4.0,
                escape(&s.name)
            );
        }
        svg.push_str("</svg>");
        svg
    }

    /// Writes `<stem>.svg` under `dir`.
    pub fn write_to(&self, dir: &Path, stem: &str) -> io::Result<()> {
        std::fs::create_dir_all(dir)?;
        std::fs::write(dir.join(format!("{stem}.svg")), self.to_svg())
    }
}

fn bounds(values: &[f64]) -> (f64, f64) {
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for &v in values {
        min = min.min(v);
        max = max.max(v);
    }
    if !min.is_finite() || !max.is_finite() {
        (0.0, 1.0)
    } else if (max - min).abs() < 1e-12 {
        (min - 0.5, max + 0.5)
    } else {
        (min, max)
    }
}

fn format_si(v: f64) -> String {
    if v >= 1e6 {
        format!("{:.1}M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.1}k", v / 1e3)
    } else if v >= 1.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.2e}")
    }
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Chart {
        let mut c = Chart::new("T", "x", "y", Scale::Log2, Scale::Linear);
        c.series("a", vec![(1.0, 1.0), (2.0, 2.0), (4.0, 3.5)]);
        c.series("b", vec![(1.0, 1.0), (2.0, 1.5), (4.0, 1.8)]);
        c
    }

    #[test]
    fn svg_is_well_formed_enough() {
        let svg = sample().to_svg();
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert!(svg.contains(">a</text>"));
        assert!(svg.contains(">b</text>"));
    }

    #[test]
    fn log_axis_labels_show_raw_values() {
        let svg = sample().to_svg();
        // x ticks at 1 and 4 (2^0 and 2^2)
        assert!(svg.contains(">1</text>"));
        assert!(svg.contains(">4</text>"));
    }

    #[test]
    #[should_panic(expected = "log2 x-axis needs positive x")]
    fn log_axis_rejects_non_positive() {
        let mut c = Chart::new("T", "x", "y", Scale::Log2, Scale::Linear);
        c.series("bad", vec![(0.0, 1.0)]);
    }

    #[test]
    fn degenerate_single_point_does_not_panic() {
        let mut c = Chart::new("T", "x", "y", Scale::Linear, Scale::Linear);
        c.series("p", vec![(3.0, 7.0)]);
        let svg = c.to_svg();
        assert!(svg.contains("<circle"));
    }

    #[test]
    fn writes_file() {
        let dir = std::env::temp_dir().join("ptq_plot_test");
        sample().write_to(&dir, "chart").unwrap();
        assert!(dir.join("chart.svg").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn si_formatting() {
        assert_eq!(format_si(1_500_000.0), "1.5M");
        assert_eq!(format_si(2_500.0), "2.5k");
        assert_eq!(format_si(3.2), "3.2");
    }
}
