//! Parallel experiment scheduler — the reproduction harness dogfoods the
//! paper's queue.
//!
//! Each experiment is a list of independent simulation points (one BFS
//! launch each). [`Sched::par_map`] fans them out over real threads, and
//! the work distribution itself runs through the host
//! [`RfAnQueue`]: every point index is enqueued up front with one
//! batched fetch-add, and each worker claims points with the wait-free
//! reserve + poll dequeue of paper Listing 2. Because all data is
//! published before any worker starts, a pending poll can only mean the
//! ticket is past `Rear` — i.e. the queue is drained — so the
//! no-queue-empty-exception design doubles as the termination condition.
//!
//! # Determinism
//!
//! Thread scheduling only affects *which worker* runs a point, never the
//! point itself: results are collected with their indices and re-sorted,
//! so `par_map` returns exactly what the serial loop would. Experiments
//! built on it emit byte-identical tables at any job count.
//!
//! # Cost-aware ordering
//!
//! Simulation points are wildly uneven — a full-occupancy sweep point on
//! the largest dataset costs orders of magnitude more than a one-workgroup
//! point on a toy graph. With a handful of workers, claiming points in
//! index order regularly strands the longest point at the tail of the run,
//! serializing it behind an otherwise-drained queue.
//! [`Sched::par_map_lpt`] instead *enqueues* indices in descending
//! estimated-cost order (longest processing time first, the classic LPT
//! heuristic), so the expensive points start immediately and the cheap
//! ones backfill the stragglers. Only the claim order changes; the result
//! vector is still re-sorted by index, so the output bytes are identical
//! to the serial loop's.

use gpu_queue::host::{RfAnQueue, SlotTicket};
use std::num::NonZeroUsize;

/// Worker-pool configuration for an experiment run.
#[derive(Clone, Copy, Debug)]
pub struct Sched {
    jobs: usize,
}

impl Sched {
    /// A scheduler fanning out over at most `jobs` worker threads. The
    /// request is a *cap*, not a demand: simulation points are CPU-bound,
    /// so the effective count is clamped to the machine's available
    /// parallelism — oversubscribing a small box just adds context-switch
    /// and cache-thrash overhead without touching the (order-independent,
    /// re-sorted) results. `Sched::new(1)` is exactly the serial loop.
    pub fn new(jobs: usize) -> Self {
        Sched {
            jobs: jobs.max(1).min(Self::available()),
        }
    }

    /// The serial scheduler.
    pub fn serial() -> Self {
        Sched::new(1)
    }

    /// One job per available CPU (falls back to serial if the parallelism
    /// cannot be queried).
    pub fn auto() -> Self {
        Sched::new(Self::available())
    }

    fn available() -> usize {
        std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    }

    /// Exactly `jobs` workers, bypassing the available-parallelism clamp —
    /// the concurrent claim path must be testable even on a single-core
    /// host, where [`Sched::new`] would resolve every request to serial.
    #[cfg(test)]
    fn exact(jobs: usize) -> Self {
        Sched { jobs: jobs.max(1) }
    }

    /// Configured worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Applies `f` to every item and returns the results **in item
    /// order**, regardless of which worker computed what.
    ///
    /// `f` receives `(index, &item)`. Worker panics propagate.
    pub fn par_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        self.par_map_lpt(items, |_, _| 0, f)
    }

    /// Like [`Sched::par_map`], but workers claim items in descending
    /// `cost` order (longest processing time first) instead of index
    /// order, which keeps the most expensive points off the tail of the
    /// run. Ties (including the all-equal costs of `par_map`) fall back
    /// to ascending index. The returned vector is in item order either
    /// way — claim order never leaks into the results.
    pub fn par_map_lpt<T, R, C, F>(&self, items: &[T], cost: C, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        C: Fn(usize, &T) -> u64,
        F: Fn(usize, &T) -> R + Sync,
    {
        if self.jobs == 1 || items.len() <= 1 {
            return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        }

        // LPT order: descending estimated cost, index-ascending on ties
        // (sort_by_key is stable, so equal costs keep item order).
        let mut indices: Vec<u32> = (0..items.len() as u32).collect();
        indices.sort_by_key(|&i| std::cmp::Reverse(cost(i as usize, &items[i as usize])));

        // Publish every point index before any worker exists; `Rear` is
        // final from the workers' perspective.
        let queue = RfAnQueue::new(items.len());
        queue
            .enqueue_batch(&indices)
            .expect("queue sized to hold every item");

        let workers = self.jobs.min(items.len());
        let mut buckets: Vec<Vec<(usize, R)>> = Vec::with_capacity(workers);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let queue = &queue;
                    let items = &items;
                    let f = &f;
                    scope.spawn(move || {
                        let mut local = Vec::new();
                        loop {
                            let slot = queue.reserve(1).start;
                            match queue.try_take(SlotTicket(slot)) {
                                Some(idx) => {
                                    let idx = idx as usize;
                                    local.push((idx, f(idx, &items[idx])));
                                }
                                // All tokens were published before this
                                // thread started, so "no data" means the
                                // ticket is past Rear: the queue is dry.
                                None => return local,
                            }
                        }
                    })
                })
                .collect();
            for h in handles {
                buckets.push(h.join().expect("worker panicked"));
            }
        });

        let mut merged: Vec<(usize, R)> = buckets.into_iter().flatten().collect();
        merged.sort_unstable_by_key(|&(i, _)| i);
        merged.into_iter().map(|(_, r)| r).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_are_in_item_order_at_any_job_count() {
        let items: Vec<u32> = (0..257).collect();
        let expect: Vec<u64> = items.iter().map(|&x| u64::from(x) * 3 + 1).collect();
        for jobs in [1, 2, 4, 7, 64] {
            let got = Sched::exact(jobs).par_map(&items, |_, &x| u64::from(x) * 3 + 1);
            assert_eq!(got, expect, "jobs = {jobs}");
        }
    }

    #[test]
    fn every_item_runs_exactly_once() {
        let hits: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
        let items: Vec<usize> = (0..100).collect();
        Sched::exact(8).par_map(&items, |i, _| hits[i].fetch_add(1, Ordering::Relaxed));
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn index_matches_item() {
        let items: Vec<usize> = (0..50).collect();
        let got = Sched::exact(4).par_map(&items, |i, &x| (i, x));
        assert!(got.iter().all(|&(i, x)| i == x));
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let none: Vec<u32> = Vec::new();
        assert!(Sched::exact(4).par_map(&none, |_, &x| x).is_empty());
        assert_eq!(Sched::exact(4).par_map(&[9u32], |_, &x| x), vec![9]);
    }

    #[test]
    fn jobs_clamped_to_at_least_one() {
        assert_eq!(Sched::new(0).jobs(), 1);
        assert!(Sched::auto().jobs() >= 1);
    }

    #[test]
    fn lpt_results_match_serial_at_any_job_count() {
        let items: Vec<u32> = (0..157).collect();
        let expect: Vec<u64> = items.iter().map(|&x| u64::from(x) * 7 + 2).collect();
        for jobs in [1, 2, 4, 9] {
            let got = Sched::exact(jobs).par_map_lpt(
                &items,
                |_, &x| u64::from(x % 13),
                |_, &x| u64::from(x) * 7 + 2,
            );
            assert_eq!(got, expect, "jobs = {jobs}");
        }
    }

    #[test]
    fn lpt_claims_expensive_items_first() {
        // Two workers: the first two claims are necessarily the two
        // front slots of the queue, which LPT fills with the two most
        // expensive items.
        let costs: Vec<u64> = (0..64)
            .map(|i| if i == 40 { 1_000_000 } else { i })
            .collect();
        let seq = AtomicUsize::new(0);
        let ranks = Sched::exact(2).par_map_lpt(
            &costs,
            |_, &c| c,
            |_, _| seq.fetch_add(1, Ordering::Relaxed),
        );
        assert!(
            ranks[40] <= 1,
            "most expensive item claimed at rank {}",
            ranks[40]
        );
    }

    #[test]
    #[should_panic(expected = "worker panicked")]
    fn worker_panics_propagate() {
        let items: Vec<u32> = (0..8).collect();
        Sched::exact(2).par_map(&items, |_, &x| {
            assert!(x != 5, "boom");
            x
        });
    }
}
