//! Parallel experiment scheduler — the reproduction harness dogfoods the
//! paper's queue.
//!
//! Each experiment is a list of independent simulation points (one BFS
//! launch each). [`Sched::par_map`] fans them out over real threads, and
//! the work distribution itself runs through the host
//! [`RfAnQueue`]: every point index is enqueued up front with one
//! batched fetch-add, and each worker claims points with the wait-free
//! reserve + poll dequeue of paper Listing 2. Because all data is
//! published before any worker starts, a pending poll can only mean the
//! ticket is past `Rear` — i.e. the queue is drained — so the
//! no-queue-empty-exception design doubles as the termination condition.
//!
//! # Determinism
//!
//! Thread scheduling only affects *which worker* runs a point, never the
//! point itself: results are collected with their indices and re-sorted,
//! so `par_map` returns exactly what the serial loop would. Experiments
//! built on it emit byte-identical tables at any job count.

use gpu_queue::host::{RfAnQueue, SlotTicket};
use std::num::NonZeroUsize;

/// Worker-pool configuration for an experiment run.
#[derive(Clone, Copy, Debug)]
pub struct Sched {
    jobs: usize,
}

impl Sched {
    /// A scheduler fanning out over `jobs` worker threads (clamped to at
    /// least one). `Sched::new(1)` is exactly the serial loop.
    pub fn new(jobs: usize) -> Self {
        Sched { jobs: jobs.max(1) }
    }

    /// The serial scheduler.
    pub fn serial() -> Self {
        Sched::new(1)
    }

    /// One job per available CPU (falls back to serial if the parallelism
    /// cannot be queried).
    pub fn auto() -> Self {
        Sched::new(
            std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1),
        )
    }

    /// Configured worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Applies `f` to every item and returns the results **in item
    /// order**, regardless of which worker computed what.
    ///
    /// `f` receives `(index, &item)`. Worker panics propagate.
    pub fn par_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        if self.jobs == 1 || items.len() <= 1 {
            return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        }

        // Publish every point index before any worker exists; `Rear` is
        // final from the workers' perspective.
        let queue = RfAnQueue::new(items.len());
        let indices: Vec<u32> = (0..items.len() as u32).collect();
        queue
            .enqueue_batch(&indices)
            .expect("queue sized to hold every item");

        let workers = self.jobs.min(items.len());
        let mut buckets: Vec<Vec<(usize, R)>> = Vec::with_capacity(workers);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let queue = &queue;
                    let items = &items;
                    let f = &f;
                    scope.spawn(move || {
                        let mut local = Vec::new();
                        loop {
                            let slot = queue.reserve(1).start;
                            match queue.try_take(SlotTicket(slot)) {
                                Some(idx) => {
                                    let idx = idx as usize;
                                    local.push((idx, f(idx, &items[idx])));
                                }
                                // All tokens were published before this
                                // thread started, so "no data" means the
                                // ticket is past Rear: the queue is dry.
                                None => return local,
                            }
                        }
                    })
                })
                .collect();
            for h in handles {
                buckets.push(h.join().expect("worker panicked"));
            }
        });

        let mut merged: Vec<(usize, R)> = buckets.into_iter().flatten().collect();
        merged.sort_unstable_by_key(|&(i, _)| i);
        merged.into_iter().map(|(_, r)| r).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_are_in_item_order_at_any_job_count() {
        let items: Vec<u32> = (0..257).collect();
        let expect: Vec<u64> = items.iter().map(|&x| u64::from(x) * 3 + 1).collect();
        for jobs in [1, 2, 4, 7, 64] {
            let got = Sched::new(jobs).par_map(&items, |_, &x| u64::from(x) * 3 + 1);
            assert_eq!(got, expect, "jobs = {jobs}");
        }
    }

    #[test]
    fn every_item_runs_exactly_once() {
        let hits: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
        let items: Vec<usize> = (0..100).collect();
        Sched::new(8).par_map(&items, |i, _| hits[i].fetch_add(1, Ordering::Relaxed));
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn index_matches_item() {
        let items: Vec<usize> = (0..50).collect();
        let got = Sched::new(4).par_map(&items, |i, &x| (i, x));
        assert!(got.iter().all(|&(i, x)| i == x));
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let none: Vec<u32> = Vec::new();
        assert!(Sched::new(4).par_map(&none, |_, &x| x).is_empty());
        assert_eq!(Sched::new(4).par_map(&[9u32], |_, &x| x), vec![9]);
    }

    #[test]
    fn jobs_clamped_to_at_least_one() {
        assert_eq!(Sched::new(0).jobs(), 1);
        assert!(Sched::auto().jobs() >= 1);
    }

    #[test]
    #[should_panic(expected = "worker panicked")]
    fn worker_panics_propagate() {
        let items: Vec<u32> = (0..8).collect();
        Sched::new(2).par_map(&items, |_, &x| {
            assert!(x != 5, "boom");
            x
        });
    }
}
