//! Figure 4: execution time and speedup across workgroup counts for every
//! dataset and both GPUs (the paper's 12-panel scalability figure).
//!
//! Speedups are computed "relative to using one workgroup" (paper §6.2),
//! per variant, with the ideal linear line alongside.

use super::common::{point, sweep_dataset, DatasetCache, SweepPoint};
use crate::plot::{Chart, Scale as Axis};
use crate::report::{fmt_f64, Table};
use crate::{Scale, Sched};
use gpu_queue::Variant;
use ptq_graph::Dataset;
use simt::GpuConfig;

/// Runs the sweep for one (GPU, dataset) panel.
pub fn sweep_panel(
    gpu: &GpuConfig,
    dataset: Dataset,
    scale: Scale,
    sched: &Sched,
) -> Vec<SweepPoint> {
    let graph = DatasetCache::global().get(dataset, scale);
    sweep_dataset(gpu, &graph, &gpu.workgroup_sweep(), sched)
}

/// Renders one panel of Figure 4 from its sweep points.
pub fn panel_table(gpu: &GpuConfig, dataset: Dataset, points: &[SweepPoint]) -> Table {
    let mut t = Table::new(
        format!(
            "Figure 4 ({} / {}): execution time and speedup vs workgroups",
            gpu.name,
            dataset.spec().name
        ),
        &[
            "nWG",
            "BASE time (s)",
            "AN time (s)",
            "RF/AN time (s)",
            "BASE speedup",
            "AN speedup",
            "RF/AN speedup",
            "ideal",
        ],
    );
    let base1 = point(points, 1, Variant::Base).seconds;
    let an1 = point(points, 1, Variant::An).seconds;
    let rfan1 = point(points, 1, Variant::RfAn).seconds;
    for &wgs in &gpu.workgroup_sweep() {
        let b = point(points, wgs, Variant::Base).seconds;
        let a = point(points, wgs, Variant::An).seconds;
        let r = point(points, wgs, Variant::RfAn).seconds;
        t.row(vec![
            wgs.to_string(),
            fmt_f64(b),
            fmt_f64(a),
            fmt_f64(r),
            format!("{:.2}", base1 / b),
            format!("{:.2}", an1 / a),
            format!("{:.2}", rfan1 / r),
            wgs.to_string(),
        ]);
    }
    t
}

/// Renders one panel as an SVG speedup chart (log2 x, linear y) with the
/// ideal line, mirroring the paper's Figure 4 presentation.
pub fn panel_chart(gpu: &GpuConfig, dataset: Dataset, points: &[SweepPoint]) -> Chart {
    let mut chart = Chart::new(
        format!("Fig 4: {} / {} speedup", gpu.name, dataset.spec().name),
        "workgroups",
        "speedup vs 1 WG",
        Axis::Log2,
        Axis::Linear,
    );
    for variant in Variant::ALL {
        let t1 = point(points, 1, variant).seconds;
        let series: Vec<(f64, f64)> = gpu
            .workgroup_sweep()
            .iter()
            .map(|&wgs| (wgs as f64, t1 / point(points, wgs, variant).seconds))
            .collect();
        chart.series(variant.label(), series);
    }
    let ideal: Vec<(f64, f64)> = gpu
        .workgroup_sweep()
        .iter()
        .map(|&w| (w as f64, w as f64))
        .collect();
    chart.series("ideal", ideal);
    chart
}

/// RF/AN's scalability on the saturating synthetic dataset: the fraction
/// of ideal speedup achieved at the maximum workgroup count. The paper
/// claims ≥ 0.9 ("within 10% of the ideal linear speedup").
pub fn rfan_scaling_efficiency(points: &[SweepPoint], max_wgs: usize) -> f64 {
    let t1 = point(points, 1, Variant::RfAn).seconds;
    let tmax = point(points, max_wgs, Variant::RfAn).seconds;
    (t1 / tmax) / max_wgs as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;

    #[test]
    fn synthetic_panel_shapes_hold_on_small_device() {
        // Shrunk device (Spectre) + miniature synthetic: the sweep runs
        // in test time and still shows RF/AN scaling best.
        let gpu = GpuConfig::spectre();
        let points = sweep_panel(&gpu, Dataset::Synthetic, Scale::new(0.01), &Sched::new(4));
        let t = panel_table(&gpu, Dataset::Synthetic, &points);
        assert_eq!(t.num_rows(), gpu.workgroup_sweep().len());
        let max = *gpu.workgroup_sweep().last().unwrap();
        let rfan_speedup =
            point(&points, 1, Variant::RfAn).seconds / point(&points, max, Variant::RfAn).seconds;
        let base_speedup =
            point(&points, 1, Variant::Base).seconds / point(&points, max, Variant::Base).seconds;
        assert!(
            rfan_speedup > base_speedup,
            "RF/AN should scale better: {rfan_speedup} vs {base_speedup}"
        );
    }

    #[test]
    fn rfan_scaling_efficiency_is_high_on_synthetic() {
        let gpu = GpuConfig::spectre();
        let points = sweep_panel(&gpu, Dataset::Synthetic, Scale::new(0.01), &Sched::serial());
        let eff = rfan_scaling_efficiency(&points, *gpu.workgroup_sweep().last().unwrap());
        // The paper claims within 10% of ideal at full scale on the big
        // GPU; at 1% scale on the bandwidth-starved APU preset, ramp-up
        // dominates — requiring a strong fraction of ideal still catches
        // scaling regressions.
        assert!(eff > 0.3, "scaling efficiency {eff}");
    }
}
