//! Figure 3: dynamic data parallelism (vertices per BFS level) for the six
//! input datasets, plus the saturation summary the paper reads off it.

use super::common::DatasetCache;
use crate::report::Table;
use crate::{Scale, Sched};
use ptq_graph::{level_profile, Dataset};
use simt::GpuConfig;

/// Per-level vertex counts for all six datasets (long-format table:
/// one row per (dataset, level)).
pub fn profile_table(scale: Scale, sched: &Sched) -> Table {
    let mut t = Table::new(
        "Figure 3: vertices available for thread assignment at each BFS level",
        &["Dataset", "Level", "Vertices"],
    );
    let profiles = sched.par_map(&Dataset::MAIN_SIX, |_, &dataset| {
        let graph = DatasetCache::global().get(dataset, scale);
        level_profile(&graph, dataset.source())
    });
    for (dataset, profile) in Dataset::MAIN_SIX.into_iter().zip(&profiles) {
        for (level, &count) in profile.counts.iter().enumerate() {
            t.row(vec![
                dataset.spec().name.to_owned(),
                level.to_string(),
                count.to_string(),
            ]);
        }
    }
    t
}

/// Saturation summary: what fraction of each traversal keeps the two
/// GPUs' persistent threads busy — the quantity the paper uses to explain
/// every speedup difference ("idle threads do not contribute to
/// acceleration").
pub fn saturation_table(scale: Scale, sched: &Sched) -> Table {
    // At reduced scale the thread counts must shrink with the data to
    // preserve the saturation shape.
    let fiji = ((GpuConfig::fiji().max_threads() as f64 * scale.fraction()) as u64).max(64);
    let spectre = ((GpuConfig::spectre().max_threads() as f64 * scale.fraction()) as u64).max(16);
    let mut t = Table::new(
        "Figure 3 (summary): saturation of persistent threads per dataset",
        &[
            "Dataset",
            "Levels",
            "Peak width",
            "Work sat. (Fiji-equiv)",
            "Work sat. (Spectre-equiv)",
        ],
    );
    let rows = sched.par_map(&Dataset::MAIN_SIX, |_, &dataset| {
        let graph = DatasetCache::global().get(dataset, scale);
        let p = level_profile(&graph, dataset.source());
        vec![
            dataset.spec().name.to_owned(),
            p.num_levels().to_string(),
            p.peak().to_string(),
            format!("{:.2}", p.work_saturation(fiji)),
            format!("{:.2}", p.work_saturation(spectre)),
        ]
    });
    for row in rows {
        t.row(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_cover_all_datasets() {
        assert_eq!(saturation_table(Scale::TEST, &Sched::new(3)).num_rows(), 6);
        assert!(profile_table(Scale::TEST, &Sched::serial()).num_rows() >= 6);
    }

    #[test]
    fn synthetic_saturates_and_roadmaps_do_not() {
        let cache = DatasetCache::new();
        let synth = ptq_graph::level_profile(&cache.get(Dataset::Synthetic, Scale::TEST), 0);
        let road = ptq_graph::level_profile(&cache.get(Dataset::RoadNY, Scale::TEST), 0);
        let threads = 64;
        assert!(
            synth.work_saturation(threads) > 0.9,
            "synthetic work saturation {}",
            synth.work_saturation(threads)
        );
        assert!(
            road.work_saturation(threads) < 0.5,
            "roadmap work saturation {}",
            road.work_saturation(threads)
        );
    }
}
