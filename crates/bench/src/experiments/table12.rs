//! Tables 1 and 2: dataset statistics, published vs. generated.
//!
//! Because the evaluation environment cannot download SNAP or DIMACS
//! data, the harness prints the paper's published statistics side by side
//! with the calibrated generators' measured statistics so the fidelity of
//! the substitution is auditable.

use super::common::DatasetCache;
use crate::report::Table;
use crate::{Scale, Sched};
use ptq_graph::Dataset;

fn stats_table(title: &str, datasets: &[Dataset], scale: Scale, sched: &Sched) -> Table {
    let mut t = Table::new(
        title,
        &[
            "Dataset",
            "nVertices (paper)",
            "nVertices (ours)",
            "nEdges (paper)",
            "nEdges (ours)",
            "Avg (paper)",
            "Avg (ours)",
            "Max (paper)",
            "Max (ours)",
            "Std (paper)",
            "Std (ours)",
        ],
    );
    // Dataset builds dominate here; build them in parallel, emit in order.
    let rows = sched.par_map(datasets, |_, &dataset| {
        let spec = dataset.spec();
        let graph = DatasetCache::global().get(dataset, scale);
        let s = graph.degree_stats();
        vec![
            spec.name.to_owned(),
            spec.vertices.to_string(),
            graph.num_vertices().to_string(),
            spec.edges.to_string(),
            graph.num_edges().to_string(),
            format!("{:.1}", spec.avg_degree),
            format!("{:.1}", s.avg),
            spec.max_degree.to_string(),
            s.max.to_string(),
            format!("{:.2}", spec.std_degree),
            format!("{:.2}", s.std),
        ]
    });
    for row in rows {
        t.row(row);
    }
    t
}

/// Table 1: SNAP social-media dataset statistics.
pub fn table1(scale: Scale, sched: &Sched) -> Table {
    stats_table(
        "Table 1: SNAP social media graph dataset statistics (paper vs generated)",
        &[Dataset::GplusCombined, Dataset::SocLiveJournal1],
        scale,
        sched,
    )
}

/// Table 2: DIMACS roadmap dataset statistics.
pub fn table2(scale: Scale, sched: &Sched) -> Table {
    stats_table(
        "Table 2: 9th DIMACS roadmap dataset statistics (paper vs generated)",
        &[Dataset::RoadNY, Dataset::RoadLKS, Dataset::RoadUSA],
        scale,
        sched,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes() {
        assert_eq!(table1(Scale::TEST, &Sched::serial()).num_rows(), 2);
        assert_eq!(table2(Scale::TEST, &Sched::new(2)).num_rows(), 3);
    }

    #[test]
    fn generated_roadmap_avg_degree_close_to_paper() {
        let cache = DatasetCache::new();
        for ds in [Dataset::RoadNY, Dataset::RoadLKS] {
            let g = cache.get(ds, Scale::new(0.05));
            let avg = g.degree_stats().avg;
            let want = ds.spec().avg_degree;
            assert!(
                (avg - want).abs() < 0.5,
                "{ds:?}: avg {avg} vs paper {want}"
            );
        }
    }
}
