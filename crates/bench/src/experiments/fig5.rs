//! Figure 5: retry ratios — total atomic operations of the BASE kernel
//! over the operations required by the proposed design, vs workgroups,
//! for the three selected datasets (synthetic, soc-LiveJournal1, NY).
//!
//! "Figure 5a shows the BASE queue requires over 60× more atomic
//! operations than the proposed queue when the largest number of threads
//! is used on the discrete Fiji GPU."

use super::common::{point, SweepPoint};
use crate::plot::{Chart, Scale as Axis};
use crate::report::Table;
use gpu_queue::Variant;
use ptq_graph::Dataset;
use simt::GpuConfig;

/// Retry ratio at one sweep point — the paper's definition: "the ratio of
/// total atomic operations used by a kernel over the number of operations
/// required by our design", i.e. the BASE kernel's scheduler atomics
/// (reservations + retries) over the proxy-batched count RF/AN needs.
pub fn retry_ratio(points: &[SweepPoint], wgs: usize) -> f64 {
    let base = point(points, wgs, Variant::Base).metrics.scheduler_atomics;
    let rfan = point(points, wgs, Variant::RfAn).metrics.scheduler_atomics;
    base as f64 / rfan.max(1) as f64
}

/// Renders one GPU's Figure 5 panel from per-dataset sweeps.
pub fn panel_table(gpu: &GpuConfig, sweeps: &[(Dataset, Vec<SweepPoint>)]) -> Table {
    let mut columns: Vec<&str> = vec!["nWG"];
    let names: Vec<String> = sweeps
        .iter()
        .map(|(d, _)| d.spec().name.to_owned())
        .collect();
    for n in &names {
        columns.push(n.as_str());
    }
    let mut t = Table::new(
        format!(
            "Figure 5 ({}): retry ratio (BASE atomics / RF/AN atomics) vs workgroups",
            gpu.name
        ),
        &columns,
    );
    for &wgs in &gpu.workgroup_sweep() {
        let mut row = vec![wgs.to_string()];
        for (_, points) in sweeps {
            row.push(format!("{:.1}", retry_ratio(points, wgs)));
        }
        t.row(row);
    }
    t
}

/// Renders one GPU's Figure 5 panel as an SVG (log2 x, log2 y).
pub fn panel_chart(gpu: &GpuConfig, sweeps: &[(Dataset, Vec<SweepPoint>)]) -> Chart {
    let mut chart = Chart::new(
        format!("Fig 5: retry ratio ({})", gpu.name),
        "workgroups",
        "BASE / RF-AN scheduler atomics",
        Axis::Log2,
        Axis::Log2,
    );
    for (dataset, points) in sweeps {
        let series: Vec<(f64, f64)> = gpu
            .workgroup_sweep()
            .iter()
            .map(|&wgs| (wgs as f64, retry_ratio(points, wgs).max(1e-3)))
            .collect();
        chart.series(dataset.spec().name, series);
    }
    chart
}

#[cfg(test)]
mod tests {
    use super::super::common::sweep_dataset;
    use super::*;
    use crate::{Scale, Sched};

    #[test]
    fn ratio_grows_with_workgroups_and_is_large_at_max() {
        let gpu = GpuConfig::spectre();
        let graph = Dataset::Synthetic.build(Scale::new(0.01).fraction());
        let points = sweep_dataset(&gpu, &graph, &gpu.workgroup_sweep(), &Sched::new(4));
        let max_wgs = *gpu.workgroup_sweep().last().unwrap();
        let at_max = retry_ratio(&points, max_wgs);
        let at_one = retry_ratio(&points, 1);
        assert!(
            at_max > at_one,
            "ratio should grow with threads: {at_one} -> {at_max}"
        );
        // The paper reports >60x on the big GPU at 224 WGs; on the small
        // test device at miniature scale we still expect a wide margin.
        assert!(at_max > 10.0, "retry ratio at max {at_max}");
    }
}
