//! Shared plumbing for the experiments.

use crate::Scale;
use gpu_queue::Variant;
use pt_bfs::{run_bfs, BfsConfig, BfsRun};
use ptq_graph::{validate_levels, Csr, Dataset};
use simt::GpuConfig;
use std::collections::HashMap;

/// The two hardware platforms of the paper with their headline workgroup
/// counts (Table 3's `nWG` column).
pub fn platforms() -> [(GpuConfig, usize); 2] {
    [(GpuConfig::fiji(), 224), (GpuConfig::spectre(), 32)]
}

/// Caches built datasets per (dataset, scale) so multi-experiment runs do
/// not regenerate multi-million-vertex graphs repeatedly.
#[derive(Default)]
pub struct DatasetCache {
    graphs: HashMap<(Dataset, u64), Csr>,
}

impl DatasetCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds (or returns the cached) graph for `dataset` at `scale`.
    pub fn get(&mut self, dataset: Dataset, scale: Scale) -> &Csr {
        let key = (dataset, scale.fraction().to_bits());
        self.graphs
            .entry(key)
            .or_insert_with(|| dataset.build(scale.fraction()))
    }
}

/// Runs one validated BFS and returns its stats.
///
/// # Panics
/// Panics if the simulation faults or the resulting levels are wrong —
/// a reproduction harness must never silently report numbers from an
/// incorrect traversal.
pub fn bfs_run(gpu: &GpuConfig, graph: &Csr, variant: Variant, workgroups: usize) -> BfsRun {
    let config = BfsConfig::new(variant, workgroups);
    let run = run_bfs(gpu, graph, 0, &config)
        .unwrap_or_else(|e| panic!("{} {variant:?} x{workgroups}: {e}", gpu.name));
    validate_levels(graph, 0, &run.costs).unwrap_or_else(|(v, want, got)| {
        panic!(
            "{} {variant:?}: wrong level at vertex {v}: want {want} got {got}",
            gpu.name
        )
    });
    run
}

/// One measured point of a workgroup sweep.
#[derive(Clone, Debug)]
pub struct SweepPoint {
    /// Workgroups launched.
    pub wgs: usize,
    /// Queue design.
    pub variant: Variant,
    /// Simulated kernel seconds.
    pub seconds: f64,
    /// Full simulator counters.
    pub metrics: simt::Metrics,
}

/// Runs all three variants at every workgroup count of the GPU's sweep
/// (1, 2, 4, … max) over one graph — the shared measurement behind
/// Figures 1, 4, and 5.
pub fn sweep_dataset(gpu: &GpuConfig, graph: &Csr, wgs_list: &[usize]) -> Vec<SweepPoint> {
    let mut points = Vec::with_capacity(wgs_list.len() * Variant::ALL.len());
    for &wgs in wgs_list {
        for variant in Variant::ALL {
            let run = bfs_run(gpu, graph, variant, wgs);
            points.push(SweepPoint {
                wgs,
                variant,
                seconds: run.seconds,
                metrics: run.metrics,
            });
        }
    }
    points
}

/// Finds a sweep point.
pub fn point(points: &[SweepPoint], wgs: usize, variant: Variant) -> &SweepPoint {
    points
        .iter()
        .find(|p| p.wgs == wgs && p.variant == variant)
        .expect("sweep point missing")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn platforms_match_paper() {
        let [(fiji, f_wg), (spectre, s_wg)] = platforms();
        assert_eq!(fiji.name, "Fiji");
        assert_eq!(f_wg, 224);
        assert_eq!(spectre.name, "Spectre");
        assert_eq!(s_wg, 32);
    }

    #[test]
    fn cache_returns_same_graph() {
        let mut cache = DatasetCache::new();
        let a = cache.get(Dataset::RoadNY, Scale::TEST).num_vertices();
        let b = cache.get(Dataset::RoadNY, Scale::TEST).num_vertices();
        assert_eq!(a, b);
    }
}
