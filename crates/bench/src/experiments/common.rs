//! Shared plumbing for the experiments.

use crate::{Scale, Sched};
use gpu_queue::Variant;
use pt_bfs::{run_bfs, PtConfig, Run};
use ptq_graph::{validate_levels, Csr, Dataset};
use simt::{GpuConfig, Profile};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Total simulated rounds across every validated BFS run of the process,
/// the throughput denominator for `BENCH_repro.json`.
static ROUNDS_SIMULATED: AtomicU64 = AtomicU64::new(0);

/// Rounds simulated so far (all [`bfs_run`] calls in this process).
pub fn rounds_simulated() -> u64 {
    ROUNDS_SIMULATED.load(Ordering::Relaxed)
}

/// Adds `rounds` to the process-wide throughput denominator (used by
/// experiments that drive runs outside [`bfs_run`]).
pub fn record_rounds(rounds: u64) {
    ROUNDS_SIMULATED.fetch_add(rounds, Ordering::Relaxed);
}

/// Engine plan-phase worker budget installed for this process: every
/// [`PtConfig`] the experiments build picks it up, so one `repro`
/// invocation runs every simulation at the same (byte-identical —
/// DESIGN.md §12) inner worker count. Defaults to 1: the historical
/// fully-serial round loop.
static ENGINE_WORKERS: AtomicUsize = AtomicUsize::new(1);
/// What the user asked for (`--engine-workers`; 0 = auto), before the
/// oversubscription clamp — reported in `BENCH_repro.json` so a clamped
/// run is distinguishable from a deliberately serial one.
static ENGINE_WORKERS_REQUESTED: AtomicUsize = AtomicUsize::new(1);

/// The host's available parallelism (1 if it cannot be queried).
pub fn host_cores() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Resolves and installs the engine plan-phase worker budget.
///
/// `requested == 0` means "fill whatever the outer scheduler leaves
/// free". Any request is clamped so `outer_jobs × inner_workers` never
/// exceeds the host's available parallelism: the outer `--jobs` fan-out
/// and the inner plan shards are both CPU-bound, so stacking them past
/// the core count only adds context-switch overhead — and results are
/// byte-identical at any worker count, so the clamp is pure scheduling
/// policy. Returns the effective count.
pub fn configure_engine_workers(requested: usize, outer_jobs: usize) -> usize {
    let budget = (host_cores() / outer_jobs.max(1)).max(1);
    let effective = if requested == 0 {
        budget
    } else {
        requested.min(budget).max(1)
    };
    ENGINE_WORKERS_REQUESTED.store(requested, Ordering::Relaxed);
    ENGINE_WORKERS.store(effective, Ordering::Relaxed);
    effective
}

/// The installed engine worker budget (1 unless
/// [`configure_engine_workers`] raised it).
pub fn engine_workers() -> usize {
    ENGINE_WORKERS.load(Ordering::Relaxed)
}

/// The raw `--engine-workers` request (0 = auto) behind the installed
/// budget.
pub fn engine_workers_requested() -> usize {
    ENGINE_WORKERS_REQUESTED.load(Ordering::Relaxed)
}

/// The experiments' standard config: the paper's defaults for `variant`
/// at `workgroups`, running on the installed engine worker budget.
pub fn pt_config(variant: Variant, workgroups: usize) -> PtConfig {
    let mut config = PtConfig::new(variant, workgroups);
    config.engine_workers = engine_workers();
    config
}

/// Process-wide engine-profile aggregate: the merged [`Profile`] (events
/// summed, footprint gauges maxed — see [`Profile::merge`]), the number
/// of runs folded in, and how many of those ran on a recycled arena.
static PROFILE_AGG: Mutex<Option<(Profile, u64, u64)>> = Mutex::new(None);

/// Folds one run's engine profile into the process-wide aggregate for
/// the `profile` section of `BENCH_repro.json`.
pub fn record_profile(profile: &Profile) {
    let mut guard = PROFILE_AGG.lock().unwrap();
    let (agg, runs, recycled) = guard.get_or_insert((Profile::default(), 0, 0));
    agg.merge(profile);
    *runs += 1;
    *recycled += profile.arena_recycled;
}

/// The merged profile, run count, and recycled-arena run count, if any
/// profiled run happened.
pub fn profile_summary() -> Option<(Profile, u64, u64)> {
    *PROFILE_AGG.lock().unwrap()
}

/// Wall-clock outcome of the `giant` experiment's two construction
/// pipelines (diagnostics for `BENCH_repro.json`; the deterministic
/// table never contains wall time).
#[derive(Clone, Copy, Debug, Default)]
pub struct GiantBench {
    /// Edges in the giant graph (throughput numerator).
    pub edges: u64,
    /// Naive leg: in-memory build wall seconds.
    pub naive_build_seconds: f64,
    /// Naive leg: eager-zeroing device-setup churn wall seconds.
    pub naive_setup_seconds: f64,
    /// Tuned leg: streamed build wall seconds.
    pub tuned_build_seconds: f64,
    /// Tuned leg: demand-zeroing device-setup churn wall seconds.
    pub tuned_setup_seconds: f64,
    /// Engine-par leg: timed validated BFS wall seconds with the serial
    /// round loop (1 plan worker).
    pub par_serial_seconds: f64,
    /// Engine-par leg: the same BFS with [`GiantBench::par_workers`]
    /// plan workers — byte-identical simulation, different wall clock.
    pub par_parallel_seconds: f64,
    /// Plan workers the parallel leg ran with (deliberately unclamped:
    /// the leg measures the engine, not the harness policy).
    pub par_workers: u64,
    /// Host cores available when the legs were timed — the context that
    /// makes the speedup honest (4 workers on 1 core cannot win).
    pub host_cores: u64,
}

impl GiantBench {
    /// Edges per second through the naive build+setup pipeline.
    pub fn naive_edges_per_second(&self) -> f64 {
        self.edges as f64 / (self.naive_build_seconds + self.naive_setup_seconds).max(1e-9)
    }

    /// Edges per second through the tuned build+setup pipeline.
    pub fn tuned_edges_per_second(&self) -> f64 {
        self.edges as f64 / (self.tuned_build_seconds + self.tuned_setup_seconds).max(1e-9)
    }

    /// Tuned-over-naive pipeline throughput ratio.
    pub fn speedup(&self) -> f64 {
        self.tuned_edges_per_second() / self.naive_edges_per_second().max(1e-9)
    }

    /// Single-run wall-clock speedup of the parallel plan phase over the
    /// serial round loop (> 1 means the workers paid off).
    pub fn par_speedup(&self) -> f64 {
        self.par_serial_seconds / self.par_parallel_seconds.max(1e-9)
    }
}

/// One serve-leg entry for the `serve` section of `BENCH_repro.json`.
/// Every field is simulated (cycles, counts, rates over cycles), so the
/// section is byte-identical at any `--jobs` and `--engine-workers`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ServeBench {
    /// Leg name ("steady", "overload", "faulted").
    pub leg: &'static str,
    /// Queries offered by the leg's trace.
    pub queries: u64,
    /// Completed (oracle-validated) queries.
    pub completed: u64,
    /// Completed queries that needed at least one service-level retry.
    pub retried: u64,
    /// Deadline-shed queries.
    pub shed: u64,
    /// Quarantined queries.
    pub quarantined: u64,
    /// Admission rejections: backlog at its bound.
    pub rejected_queue_full: u64,
    /// Admission rejections: quarantined signature.
    pub rejected_quarantined: u64,
    /// Completed queries co-scheduled with at least one peer (0 on the
    /// serial legs, where nothing fuses).
    pub batched: u64,
    /// Median admission→completion latency in simulated cycles (`None`
    /// when the leg completed nothing — absent, not a fake 0).
    pub p50_latency_cycles: Option<u64>,
    /// 99th-percentile latency in simulated cycles (`None` as above).
    pub p99_latency_cycles: Option<u64>,
    /// Simulated cycle of the last terminal state.
    pub makespan_cycles: u64,
    /// Completed queries per simulated second.
    pub throughput_qps: f64,
    /// Shed fraction of offered queries.
    pub shed_rate: f64,
    /// Quarantined fraction of offered queries.
    pub quarantine_rate: f64,
}

static SERVE_BENCH: Mutex<Vec<ServeBench>> = Mutex::new(Vec::new());

/// Records one serve leg's summary (replacing an earlier record of the
/// same leg, so re-runs within a process stay idempotent).
pub fn record_serve(bench: ServeBench) {
    let mut legs = SERVE_BENCH.lock().unwrap();
    legs.retain(|b| b.leg != bench.leg);
    legs.push(bench);
    legs.sort_by_key(|b| b.leg);
}

/// The serve experiment's per-leg summaries, if it ran.
pub fn serve_bench() -> Vec<ServeBench> {
    SERVE_BENCH.lock().unwrap().clone()
}

static GIANT_BENCH: Mutex<Option<GiantBench>> = Mutex::new(None);

/// Records the giant experiment's wall-clock outcome.
pub fn record_giant(bench: GiantBench) {
    *GIANT_BENCH.lock().unwrap() = Some(bench);
}

/// The giant experiment's wall-clock outcome, if it ran.
pub fn giant_bench() -> Option<GiantBench> {
    *GIANT_BENCH.lock().unwrap()
}

/// Peak resident set size of this process in bytes (`VmHWM` from
/// `/proc/self/status`); 0 where the proc filesystem is unavailable.
pub fn peak_rss_bytes() -> u64 {
    #[cfg(target_os = "linux")]
    {
        if let Ok(status) = std::fs::read_to_string("/proc/self/status") {
            for line in status.lines() {
                if let Some(rest) = line.strip_prefix("VmHWM:") {
                    let kb = rest
                        .trim()
                        .trim_end_matches("kB")
                        .trim()
                        .parse::<u64>()
                        .unwrap_or(0);
                    return kb * 1024;
                }
            }
        }
        0
    }
    #[cfg(not(target_os = "linux"))]
    {
        0
    }
}

/// Faults scheduled by the chaos experiment's seeded plans.
static FAULTS_INJECTED: AtomicU64 = AtomicU64::new(0);
/// Aborts the chaos experiment's recoverable runs survived.
static ABORTS_RECOVERED: AtomicU64 = AtomicU64::new(0);
/// Rounds re-executed by retries after those aborts.
static ROUNDS_REPLAYED: AtomicU64 = AtomicU64::new(0);

/// Faults scheduled so far (chaos experiment).
pub fn faults_injected() -> u64 {
    FAULTS_INJECTED.load(Ordering::Relaxed)
}

/// Aborts survived so far (chaos experiment).
pub fn aborts_recovered() -> u64 {
    ABORTS_RECOVERED.load(Ordering::Relaxed)
}

/// Rounds replayed by recovery so far (chaos experiment).
pub fn rounds_replayed() -> u64 {
    ROUNDS_REPLAYED.load(Ordering::Relaxed)
}

/// Records one chaos run: faults its plan scheduled, aborts it survived,
/// rounds its retries replayed, and rounds it simulated (the last feeds
/// the process-wide throughput denominator like [`bfs_run`] does).
pub fn record_recovery(faults: u64, aborts: u64, replayed: u64, rounds: u64) {
    FAULTS_INJECTED.fetch_add(faults, Ordering::Relaxed);
    ABORTS_RECOVERED.fetch_add(aborts, Ordering::Relaxed);
    ROUNDS_REPLAYED.fetch_add(replayed, Ordering::Relaxed);
    ROUNDS_SIMULATED.fetch_add(rounds, Ordering::Relaxed);
}

/// Per-workload aggregates from the `workloads` experiment: simulated
/// rounds, wall seconds, and whether every audited run was retry-free.
/// Keyed by workload name; `BTreeMap` so the JSON section is emitted in
/// a stable order regardless of completion order under `--jobs`.
static WORKLOAD_STATS: Mutex<BTreeMap<&'static str, (u64, f64, bool)>> =
    Mutex::new(BTreeMap::new());

/// Records one oracle-validated workload run for the `workloads` section
/// of `BENCH_repro.json` (and the process-wide round counter).
pub fn record_workload(name: &'static str, rounds: u64, wall_seconds: f64, retry_free: bool) {
    ROUNDS_SIMULATED.fetch_add(rounds, Ordering::Relaxed);
    let mut stats = WORKLOAD_STATS.lock().unwrap();
    let entry = stats.entry(name).or_insert((0, 0.0, true));
    entry.0 += rounds;
    entry.1 += wall_seconds;
    entry.2 &= retry_free;
}

/// Per-workload `(name, rounds, wall_seconds, retry_free)` aggregates,
/// in stable (alphabetical) order. Empty if the `workloads` experiment
/// did not run.
pub fn workload_stats() -> Vec<(String, u64, f64, bool)> {
    let stats = WORKLOAD_STATS.lock().unwrap();
    stats
        .iter()
        .map(|(&name, &(rounds, wall, rf))| (name.to_owned(), rounds, wall, rf))
        .collect()
}

/// The single most expensive simulation point seen so far (wall seconds,
/// human-readable point name) — the LPT scheduler's reason to exist, and
/// `BENCH_repro.json`'s `slowest_point` entry.
static SLOWEST_POINT: Mutex<Option<(f64, String)>> = Mutex::new(None);

/// Name and wall-clock seconds of the most expensive [`bfs_run`] point of
/// the process, if any ran.
pub fn slowest_point() -> Option<(String, f64)> {
    let guard = SLOWEST_POINT.lock().unwrap();
    guard.as_ref().map(|(secs, name)| (name.clone(), *secs))
}

fn record_point_wall(name: impl FnOnce() -> String, secs: f64) {
    let mut guard = SLOWEST_POINT.lock().unwrap();
    match guard.as_mut() {
        Some(slowest) if slowest.0 >= secs => {}
        _ => *guard = Some((secs, name())),
    }
}

/// The two hardware platforms of the paper with their headline workgroup
/// counts (Table 3's `nWG` column).
pub fn platforms() -> [(GpuConfig, usize); 2] {
    [(GpuConfig::fiji(), 224), (GpuConfig::spectre(), 32)]
}

/// Caches built datasets per (dataset, scale) so multi-experiment runs do
/// not regenerate multi-million-vertex graphs repeatedly.
///
/// Thread-safe: concurrent `get`s for the *same* key build the graph
/// exactly once (the first caller builds, the rest block on its
/// `OnceLock` cell), while different keys build in parallel — the map
/// lock is only held to fetch or insert a cell, never during a build.
/// One once-built graph cell, shared between the map and in-flight getters.
type GraphCell = Arc<OnceLock<Arc<Csr>>>;

#[derive(Default)]
pub struct DatasetCache {
    graphs: Mutex<HashMap<(Dataset, u64), GraphCell>>,
}

impl DatasetCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The process-wide cache shared by every experiment, so a `repro all`
    /// run builds each (dataset, scale) graph exactly once no matter how
    /// many experiments or worker threads touch it.
    pub fn global() -> &'static DatasetCache {
        static GLOBAL: OnceLock<DatasetCache> = OnceLock::new();
        GLOBAL.get_or_init(DatasetCache::new)
    }

    /// Builds (or returns the cached) graph for `dataset` at `scale`.
    pub fn get(&self, dataset: Dataset, scale: Scale) -> Arc<Csr> {
        let key = (dataset, scale.fraction().to_bits());
        let cell = {
            let mut graphs = self.graphs.lock().unwrap();
            Arc::clone(graphs.entry(key).or_default())
        };
        Arc::clone(cell.get_or_init(|| Arc::new(dataset.build(scale.fraction()))))
    }
}

/// Runs one validated BFS and returns its stats.
///
/// # Panics
/// Panics if the simulation faults or the resulting levels are wrong —
/// a reproduction harness must never silently report numbers from an
/// incorrect traversal.
pub fn bfs_run(gpu: &GpuConfig, graph: &Csr, variant: Variant, workgroups: usize) -> Run {
    let wall = std::time::Instant::now();
    let config = pt_config(variant, workgroups);
    let run = run_bfs(gpu, graph, 0, &config)
        .unwrap_or_else(|e| panic!("{} {variant:?} x{workgroups}: {e}", gpu.name));
    validate_levels(graph, 0, &run.values).unwrap_or_else(|(v, want, got)| {
        panic!(
            "{} {variant:?}: wrong level at vertex {v}: want {want} got {got}",
            gpu.name
        )
    });
    ROUNDS_SIMULATED.fetch_add(run.metrics.rounds, Ordering::Relaxed);
    record_profile(&run.profile);
    record_point_wall(
        || {
            format!(
                "{} {variant:?} x{workgroups} |V|={}",
                gpu.name,
                graph.num_vertices()
            )
        },
        wall.elapsed().as_secs_f64(),
    );
    run
}

/// One measured point of a workgroup sweep.
#[derive(Clone, Debug)]
pub struct SweepPoint {
    /// Workgroups launched.
    pub wgs: usize,
    /// Queue design.
    pub variant: Variant,
    /// Simulated kernel seconds.
    pub seconds: f64,
    /// Full simulator counters.
    pub metrics: simt::Metrics,
}

/// Runs all three variants at every workgroup count of the GPU's sweep
/// (1, 2, 4, … max) over one graph — the shared measurement behind
/// Figures 1, 4, and 5. Points are simulated in parallel under `sched`,
/// claimed in descending estimated-cost order (vertices × occupancy — a
/// high-occupancy point simulates more wavefronts per round); the
/// returned order (and every value) is identical at any job count.
pub fn sweep_dataset(
    gpu: &GpuConfig,
    graph: &Csr,
    wgs_list: &[usize],
    sched: &Sched,
) -> Vec<SweepPoint> {
    let grid: Vec<(usize, Variant)> = wgs_list
        .iter()
        .flat_map(|&wgs| Variant::ALL.into_iter().map(move |v| (wgs, v)))
        .collect();
    let verts = graph.num_vertices() as u64;
    sched.par_map_lpt(
        &grid,
        |_, &(wgs, _)| verts * wgs as u64,
        |_, &(wgs, variant)| {
            let run = bfs_run(gpu, graph, variant, wgs);
            SweepPoint {
                wgs,
                variant,
                seconds: run.seconds,
                metrics: run.metrics,
            }
        },
    )
}

/// Finds a sweep point.
pub fn point(points: &[SweepPoint], wgs: usize, variant: Variant) -> &SweepPoint {
    points
        .iter()
        .find(|p| p.wgs == wgs && p.variant == variant)
        .expect("sweep point missing")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn platforms_match_paper() {
        let [(fiji, f_wg), (spectre, s_wg)] = platforms();
        assert_eq!(fiji.name, "Fiji");
        assert_eq!(f_wg, 224);
        assert_eq!(spectre.name, "Spectre");
        assert_eq!(s_wg, 32);
    }

    #[test]
    fn cache_returns_same_graph() {
        let cache = DatasetCache::new();
        let a = cache.get(Dataset::RoadNY, Scale::TEST);
        let b = cache.get(Dataset::RoadNY, Scale::TEST);
        assert!(Arc::ptr_eq(&a, &b), "second get must hit the cache");
    }

    #[test]
    fn concurrent_gets_build_once_and_agree() {
        let cache = DatasetCache::new();
        let graphs: Vec<Arc<Csr>> = Sched::new(8).par_map(&[(); 16], |_, ()| {
            cache.get(Dataset::Synthetic, Scale::TEST)
        });
        assert!(graphs.windows(2).all(|w| Arc::ptr_eq(&w[0], &w[1])));
    }
}
