//! Figure 1: retries caused by CAS failure for the top-down BFS, as a
//! function of the number of active threads (workgroups), per dataset.
//!
//! The paper uses this figure to motivate the whole design: "CAS failures
//! increase as the number of actively running threads increases."

use super::common::{point, SweepPoint};
use crate::plot::{Chart, Scale as Axis};
use crate::report::Table;
use gpu_queue::Variant;
use ptq_graph::Dataset;
use simt::GpuConfig;

/// Renders the Figure 1 panel for one GPU from precomputed sweeps (one
/// sweep per dataset, same workgroup grid).
pub fn panel_table(gpu: &GpuConfig, sweeps: &[(Dataset, Vec<SweepPoint>)]) -> Table {
    let mut columns: Vec<&str> = vec!["nWG"];
    let names: Vec<String> = sweeps
        .iter()
        .map(|(d, _)| d.spec().name.to_owned())
        .collect();
    for n in &names {
        columns.push(n.as_str());
    }
    let mut t = Table::new(
        format!(
            "Figure 1 ({}): BASE CAS-failure retries vs workgroups",
            gpu.name
        ),
        &columns,
    );
    for &wgs in &gpu.workgroup_sweep() {
        let mut row = vec![wgs.to_string()];
        for (_, points) in sweeps {
            let p = point(points, wgs, Variant::Base);
            row.push(p.metrics.cas_failures.to_string());
        }
        t.row(row);
    }
    t
}

/// Renders one GPU's Figure 1 panel as an SVG (log2 x, log2 y).
pub fn panel_chart(gpu: &GpuConfig, sweeps: &[(Dataset, Vec<SweepPoint>)]) -> Chart {
    let mut chart = Chart::new(
        format!("Fig 1: BASE CAS-failure retries ({})", gpu.name),
        "workgroups",
        "CAS failures",
        Axis::Log2,
        Axis::Log2,
    );
    for (dataset, points) in sweeps {
        let series: Vec<(f64, f64)> = gpu
            .workgroup_sweep()
            .iter()
            .map(|&wgs| {
                let f = point(points, wgs, Variant::Base).metrics.cas_failures;
                (wgs as f64, (f as f64).max(1.0))
            })
            .collect();
        chart.series(dataset.spec().name, series);
    }
    chart
}

#[cfg(test)]
mod tests {
    use super::super::common::sweep_dataset;
    use super::*;
    use crate::{Scale, Sched};

    #[test]
    fn retries_grow_with_workgroups_on_saturating_data() {
        let gpu = GpuConfig::spectre();
        let graph = Dataset::Synthetic.build(Scale::new(0.01).fraction());
        let points = sweep_dataset(&gpu, &graph, &gpu.workgroup_sweep(), &Sched::new(4));
        let sweeps = vec![(Dataset::Synthetic, points)];
        let t = panel_table(&gpu, &sweeps);
        assert_eq!(t.num_rows(), gpu.workgroup_sweep().len());
        let first = point(&sweeps[0].1, 1, Variant::Base).metrics.cas_failures;
        let max_wgs = *gpu.workgroup_sweep().last().unwrap();
        let last = point(&sweeps[0].1, max_wgs, Variant::Base)
            .metrics
            .cas_failures;
        assert!(
            last > first,
            "failures should grow with threads: {first} -> {last}"
        );
    }
}
