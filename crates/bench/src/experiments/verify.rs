//! `repro verify` — machine-checked reproduction verdicts.
//!
//! Runs the minimal set of measurements behind every headline claim of
//! the paper and prints PASS/FAIL verdicts with the measured values, so a
//! reviewer can audit the reproduction in one command instead of reading
//! tables. Tolerances are generous on purpose: the claims are about
//! *shape* (ordering, rough factors, crossovers), not absolute times.

use super::common::{bfs_run, pt_config, sweep_dataset, DatasetCache};
use crate::report::Table;
use crate::{Scale, Sched};
use gpu_queue::Variant;
use pt_bfs::baseline::{run_chai, run_rodinia};
use pt_bfs::run_bfs;
use ptq_graph::Dataset;
use simt::GpuConfig;

/// One checked claim.
#[derive(Clone, Debug)]
pub struct Verdict {
    /// Short claim identifier.
    pub claim: &'static str,
    /// The paper's stated value.
    pub paper: String,
    /// What we measured.
    pub measured: String,
    /// Whether the shape holds within tolerance.
    pub pass: bool,
}

/// Runs every check at the given scale. Expensive (several minutes at
/// 5% scale): it sweeps the synthetic dataset and runs both baselines.
pub fn run_checks(scale: Scale, sched: &Sched) -> Vec<Verdict> {
    let mut verdicts = Vec::new();
    let fiji = GpuConfig::fiji();
    let spectre = GpuConfig::spectre();

    // --- Tables 3/4: saturating synthetic ratios -----------------------
    let synth = DatasetCache::global().get(Dataset::Synthetic, scale);
    let grid = [
        (&fiji, Variant::Base, 224usize),
        (&fiji, Variant::An, 224),
        (&fiji, Variant::RfAn, 224),
        (&spectre, Variant::Base, 32),
        (&spectre, Variant::RfAn, 32),
    ];
    let mut runs = sched
        .par_map(&grid, |_, &(gpu, variant, wgs)| {
            bfs_run(gpu, &synth, variant, wgs)
        })
        .into_iter();
    let f_base = runs.next().unwrap();
    let f_an = runs.next().unwrap();
    let f_rfan = runs.next().unwrap();
    let s_base = runs.next().unwrap();
    let s_rfan = runs.next().unwrap();
    let base_ratio = f_base.seconds / f_rfan.seconds;
    let an_ratio = f_an.seconds / f_rfan.seconds;
    verdicts.push(Verdict {
        claim: "Fiji synthetic: BASE/RF-AN time ratio",
        paper: "11.28x".into(),
        measured: format!("{base_ratio:.2}x"),
        pass: (4.0..40.0).contains(&base_ratio),
    });
    verdicts.push(Verdict {
        claim: "Fiji synthetic: AN/RF-AN time ratio",
        paper: "7.83x".into(),
        measured: format!("{an_ratio:.2}x"),
        pass: (3.0..20.0).contains(&an_ratio) && an_ratio < base_ratio,
    });

    let s_ratio = s_base.seconds / s_rfan.seconds;
    verdicts.push(Verdict {
        claim: "Spectre synthetic: BASE/RF-AN time ratio (smaller than Fiji's)",
        paper: "2.10x".into(),
        measured: format!("{s_ratio:.2}x"),
        pass: s_ratio > 1.2 && s_ratio < base_ratio,
    });

    // --- Retry-freedom --------------------------------------------------
    verdicts.push(Verdict {
        claim: "RF/AN executes zero retries",
        paper: "0 (by design)".into(),
        measured: format!(
            "{} CAS failures, {} empty retries",
            f_rfan.metrics.cas_failures, f_rfan.metrics.queue_empty_retries
        ),
        pass: f_rfan.metrics.total_retries() == 0,
    });

    // --- AuditMode: RF/AN claim discipline on all six main datasets -----
    // Every run is audited in-sim (one AFA per wavefront queue op, zero
    // CAS) and the run-level aggregates are re-checked here; a violation
    // surfaces as a FAIL verdict instead of a panic. Measured strings are
    // counts only, so serial and parallel schedulers emit identical
    // tables.
    let audited = sched.par_map(&Dataset::MAIN_SIX, |_, &dataset| {
        let graph = DatasetCache::global().get(dataset, scale);
        let config = pt_config(Variant::RfAn, 56);
        match run_bfs(&fiji, &graph, dataset.source(), &config) {
            Ok(run) => (run.metrics.total_retries(), None),
            Err(e) => (0, Some(format!("{}: {e}", dataset.spec().name))),
        }
    });
    let audit_failures: Vec<&String> = audited.iter().filter_map(|(_, e)| e.as_ref()).collect();
    let audit_retries: u64 = audited.iter().map(|(r, _)| r).sum();
    verdicts.push(Verdict {
        claim: "AuditMode: RF/AN passes the per-wavefront atomic audit on all six datasets",
        paper: "1 AFA per wavefront op, 0 retries".into(),
        measured: if audit_failures.is_empty() {
            format!("6/6 audited clean, {audit_retries} retries")
        } else {
            format!(
                "{}/6 clean; first: {}",
                6 - audit_failures.len(),
                audit_failures[0]
            )
        },
        pass: audit_failures.is_empty() && audit_retries == 0,
    });

    // --- Figure 5: scheduler-atomic ratio at max occupancy --------------
    let fig5_ratio =
        f_base.metrics.scheduler_atomics as f64 / f_rfan.metrics.scheduler_atomics.max(1) as f64;
    verdicts.push(Verdict {
        claim: "Fig 5: BASE needs 'over 60x' the scheduler atomics",
        paper: ">60x at 224 WGs".into(),
        measured: format!("{fig5_ratio:.0}x"),
        pass: fig5_ratio > 60.0,
    });

    // --- Figure 1: retries grow with threads ----------------------------
    let small_scale = Scale::new((scale.fraction() * 0.5).max(0.001));
    let small = DatasetCache::global().get(Dataset::Synthetic, small_scale);
    let sweep = sweep_dataset(&fiji, &small, &[1, 16, 224], sched);
    let fail_at = |wgs: usize| {
        super::common::point(&sweep, wgs, Variant::Base)
            .metrics
            .cas_failures
    };
    let (f1, f224) = (fail_at(1), fail_at(224));
    verdicts.push(Verdict {
        claim: "Fig 1: CAS failures grow with active threads",
        paper: "monotone growth".into(),
        measured: format!("{f1} @1WG -> {f224} @224WG"),
        pass: f224 > f1,
    });

    // --- Figure 4: RF/AN scales, CAS designs fall away ------------------
    let rfan_speedup = super::common::point(&sweep, 1, Variant::RfAn).seconds
        / super::common::point(&sweep, 224, Variant::RfAn).seconds;
    let base_speedup = super::common::point(&sweep, 1, Variant::Base).seconds
        / super::common::point(&sweep, 224, Variant::Base).seconds;
    verdicts.push(Verdict {
        claim: "Fig 4: RF/AN speedup at 224 WGs exceeds BASE's",
        paper: "RF/AN near-ideal, BASE flattens".into(),
        measured: format!("RF/AN {rfan_speedup:.0}x vs BASE {base_speedup:.0}x"),
        pass: rfan_speedup > base_speedup && rfan_speedup > 30.0,
    });

    // --- Table 5: CHAI ---------------------------------------------------
    let road = DatasetCache::global().get(Dataset::ChaiNYR, scale);
    let chai = run_chai(&spectre, &road, 0, 32).expect("chai runs");
    let chai_rfan = bfs_run(&spectre, &road, Variant::RfAn, 32);
    let chai_speedup = chai.seconds / chai_rfan.seconds;
    verdicts.push(Verdict {
        claim: "Table 5: RF/AN beats CHAI on NYR",
        paper: "2.57x".into(),
        measured: format!("{chai_speedup:.2}x"),
        pass: (1.3..10.0).contains(&chai_speedup),
    });

    // --- Table 6: Rodinia + crossover ------------------------------------
    let g4096 = DatasetCache::global().get(Dataset::RodiniaGraph4096, Scale::FULL);
    let rod_small = run_rodinia(&fiji, &g4096, 0, 224).expect("rodinia runs");
    let rfan_small = bfs_run(&fiji, &g4096, Variant::RfAn, 224);
    let speedup_small = rod_small.seconds / rfan_small.seconds;
    verdicts.push(Verdict {
        claim: "Table 6: RF/AN beats Rodinia on graph4096",
        paper: "28.95x".into(),
        measured: format!("{speedup_small:.1}x"),
        pass: speedup_small > 3.0,
    });
    let g1m = DatasetCache::global().get(
        Dataset::RodiniaGraph1M,
        Scale::new(scale.fraction().max(0.25)),
    );
    let rod_big = run_rodinia(&spectre, &g1m, 0, 32).expect("rodinia runs");
    let rfan_big = bfs_run(&spectre, &g1m, Variant::RfAn, 32);
    let speedup_big = rod_big.seconds / rfan_big.seconds;
    verdicts.push(Verdict {
        claim: "Table 6: Rodinia gap shrinks on the wide 1M-class dataset (Spectre)",
        paper: "30.3x -> 3.41x".into(),
        measured: format!("{speedup_small:.1}x -> {speedup_big:.1}x"),
        pass: speedup_big < speedup_small && speedup_big > 0.8,
    });

    verdicts
}

/// Renders the verdicts as a table.
pub fn table(verdicts: &[Verdict]) -> Table {
    let mut t = Table::new(
        "Reproduction verification: the paper's headline claims, machine-checked",
        &["Claim", "Paper", "Measured", "Verdict"],
    );
    for v in verdicts {
        t.row(vec![
            v.claim.to_owned(),
            v.paper.clone(),
            v.measured.clone(),
            if v.pass { "PASS" } else { "FAIL" }.to_owned(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_claims_pass_at_small_scale() {
        // A reduced-scale end-to-end audit; the full-scale audit is
        // `repro verify --scale 0.05`.
        let verdicts = run_checks(Scale::new(0.02), &Sched::new(4));
        let failed: Vec<&Verdict> = verdicts.iter().filter(|v| !v.pass).collect();
        assert!(
            failed.is_empty(),
            "claims failed: {:#?}",
            failed
                .iter()
                .map(|v| format!("{}: {}", v.claim, v.measured))
                .collect::<Vec<_>>()
        );
        assert_eq!(table(&verdicts).num_rows(), verdicts.len());
    }
}
