//! One module per table/figure of the paper, plus the ablations.
//!
//! | paper artifact | function | output stem |
//! |---|---|---|
//! | Figure 1 | [`fig1::run`] | `fig1_<gpu>` |
//! | Figure 3 | [`fig3::run`] | `fig3` |
//! | Table 1 | [`table12::table1`] | `table1` |
//! | Table 2 | [`table12::table2`] | `table2` |
//! | Table 3 | [`table34::table3`] | `table3` |
//! | Table 4 | [`table34::table4`] | `table4` |
//! | Figure 4 | [`fig4::run`] | `fig4_<gpu>_<dataset>` |
//! | Figure 5 | [`fig5::run`] | `fig5_<gpu>` |
//! | Table 5 | [`table5::run`] | `table5` |
//! | Table 6 | [`table6::run`] | `table6` |
//! | ablations | [`ablate`] | `ablate_*` |
//! | scaling deep-dive | [`scaling::table`] | `scaling_<gpu>` |
//! | chaos / recovery | [`chaos::table`] | `chaos` |
//! | workload matrix | [`workloads::table`] | `workloads` |
//! | giant-graph scale | [`giant::table`] | `giant` |
//! | serving core | [`serve::summary_table`] | `serve_*` |

pub mod ablate;
pub mod chaos;
pub mod common;
pub mod fig1;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod giant;
pub mod scaling;
pub mod serve;
pub mod table12;
pub mod table34;
pub mod table5;
pub mod table6;
pub mod verify;
pub mod workloads;
