//! Table 6: performance comparison with the Rodinia BFS benchmark.
//!
//! Rodinia's level-synchronous implementation relaunches a kernel per
//! level and scans every vertex each time; the paper beats it by 36× on
//! the smaller shallow datasets and 1.26× on the wide 1M-vertex one —
//! the crossover the harness must reproduce: **the speedup shrinks as the
//! dataset grows** because launch overhead amortizes away.

use super::common::{bfs_run, DatasetCache};
use crate::report::Table;
use crate::{Scale, Sched};
use gpu_queue::Variant;
use pt_bfs::baseline::run_rodinia;
use ptq_graph::{validate_levels, Dataset};
use simt::GpuConfig;

/// One measurement of Table 6.
#[derive(Clone, Debug)]
pub struct Row {
    /// Dataset name.
    pub dataset: &'static str,
    /// GPU name.
    pub device: &'static str,
    /// Rodinia kernel time (ms).
    pub rodinia_ms: f64,
    /// RF/AN kernel time (ms).
    pub rfan_ms: f64,
}

impl Row {
    /// RF/AN's speedup over Rodinia.
    pub fn speedup(&self) -> f64 {
        self.rodinia_ms / self.rfan_ms
    }
}

/// The three Rodinia datasets in ascending size.
pub const DATASETS: [Dataset; 3] = [
    Dataset::RodiniaGraph4096,
    Dataset::RodiniaGraph65536,
    Dataset::RodiniaGraph1M,
];

/// Measures all dataset × device combinations.
pub fn measure(scale: Scale, sched: &Sched) -> Vec<Row> {
    let grid: Vec<(Dataset, GpuConfig)> = DATASETS
        .into_iter()
        .flat_map(|d| [(d, GpuConfig::spectre()), (d, GpuConfig::fiji())])
        .collect();
    sched.par_map(&grid, |_, (dataset, gpu)| {
        let dataset = *dataset;
        let graph = DatasetCache::global().get(dataset, scale);
        let wgs = gpu.num_cus * gpu.wgs_per_cu;
        let rodinia = run_rodinia(gpu, &graph, dataset.source(), wgs)
            .unwrap_or_else(|e| panic!("Rodinia on {dataset:?}: {e}"));
        validate_levels(&graph, dataset.source(), &rodinia.values)
            .unwrap_or_else(|_| panic!("Rodinia wrong levels on {dataset:?}"));
        let rfan = bfs_run(gpu, &graph, Variant::RfAn, wgs);
        Row {
            dataset: dataset.spec().name,
            device: gpu.name,
            rodinia_ms: rodinia.seconds * 1e3,
            rfan_ms: rfan.seconds * 1e3,
        }
    })
}

/// Renders Table 6.
pub fn table(rows: &[Row]) -> Table {
    let mut t = Table::new(
        "Table 6: performance comparison with Rodinia BFS (ms)",
        &["Dataset", "Device", "Rodinia", "RF/AN", "Speedup"],
    );
    for r in rows {
        t.row(vec![
            r.dataset.to_owned(),
            r.device.to_owned(),
            format!("{:.4}", r.rodinia_ms),
            format!("{:.4}", r.rfan_ms),
            format!("{:.2}x", r.speedup()),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfan_beats_rodinia_on_every_dataset() {
        let rows = measure(Scale::new(0.02), &Sched::new(4));
        assert_eq!(rows.len(), 6);
        for r in &rows {
            assert!(
                r.speedup() > 1.0,
                "{} on {}: speedup {}",
                r.dataset,
                r.device,
                r.speedup()
            );
        }
    }

    #[test]
    fn speedup_shrinks_as_rodinia_datasets_grow() {
        // The crossover needs real size separation: graph4096 at full size
        // vs a 100k-vertex slice of graph1MW_6 (the per-level launch
        // overhead amortizes away as levels get wider).
        use super::super::common::bfs_run;
        use gpu_queue::Variant;
        use pt_bfs::baseline::run_rodinia;
        use simt::GpuConfig;

        let gpu = GpuConfig::fiji();
        let wgs = gpu.num_cus * gpu.wgs_per_cu;
        let speedup = |graph: &ptq_graph::Csr| {
            let rodinia = run_rodinia(&gpu, graph, 0, wgs).unwrap();
            let rfan = bfs_run(&gpu, graph, Variant::RfAn, wgs);
            rodinia.seconds / rfan.seconds
        };
        let small = Dataset::RodiniaGraph4096.build(1.0);
        let large = Dataset::RodiniaGraph1M.build(1.0);
        let s_small = speedup(&small);
        let s_large = speedup(&large);
        assert!(
            s_small > s_large,
            "speedup should shrink with size: {s_small} vs {s_large}"
        );
    }
}
