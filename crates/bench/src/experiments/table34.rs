//! Tables 3 and 4: kernel execution times of the three queue variants
//! across the six datasets and both GPUs, and the relative improvements.

use super::common::{bfs_run, platforms, DatasetCache};
use crate::report::{fmt_f64, Table};
use crate::{Scale, Sched};
use gpu_queue::Variant;
use ptq_graph::Dataset;
use simt::GpuConfig;
use std::collections::HashMap;

/// All execution times measured for Table 3, keyed by
/// `(gpu name, dataset, variant)`.
pub type Times = HashMap<(&'static str, Dataset, Variant), f64>;

/// Measures every (GPU, dataset, variant) combination.
pub fn measure(scale: Scale, sched: &Sched) -> Times {
    measure_for(scale, &Dataset::MAIN_SIX, sched)
}

/// Measures the given datasets only (used by reduced-scale tests).
pub fn measure_for(scale: Scale, datasets: &[Dataset], sched: &Sched) -> Times {
    let grid: Vec<(GpuConfig, usize, Dataset, Variant)> = platforms()
        .into_iter()
        .flat_map(|(gpu, wgs)| {
            datasets.iter().flat_map(move |&dataset| {
                let gpu = gpu.clone();
                Variant::ALL
                    .into_iter()
                    .map(move |v| (gpu.clone(), wgs, dataset, v))
            })
        })
        .collect();
    sched
        .par_map_lpt(
            &grid,
            // Estimated point cost: dataset vertices × occupancy (the
            // spec count is pre-scale, but a constant factor does not
            // change the LPT order).
            |_, (_, wgs, dataset, _)| dataset.spec().vertices as u64 * *wgs as u64,
            |_, (gpu, wgs, dataset, variant)| {
                let graph = DatasetCache::global().get(*dataset, scale);
                let run = bfs_run(gpu, &graph, *variant, *wgs);
                ((gpu.name, *dataset, *variant), run.seconds)
            },
        )
        .into_iter()
        .collect()
}

/// Renders Table 3 (execution times in seconds).
pub fn table3(times: &Times) -> Table {
    let mut t = Table::new(
        "Table 3: execution times (s) of queue variants across datasets and hardware",
        &["GPU", "nWG", "Dataset", "BASE", "AN", "RF/AN"],
    );
    for (gpu, wgs) in platforms() {
        for dataset in Dataset::MAIN_SIX {
            let get = |v: Variant| times[&(gpu.name, dataset, v)];
            t.row(vec![
                gpu.name.to_owned(),
                wgs.to_string(),
                dataset.spec().name.to_owned(),
                fmt_f64(get(Variant::Base)),
                fmt_f64(get(Variant::An)),
                fmt_f64(get(Variant::RfAn)),
            ]);
        }
    }
    t
}

/// Renders Table 4 (performance improvement over BASE, in percent, as the
/// paper reports it: `BASE time / variant time × 100`).
pub fn table4(times: &Times) -> Table {
    let mut t = Table::new(
        "Table 4: performance improvement of AN and RF/AN over BASE",
        &[
            "Dataset",
            "Fiji AN",
            "Fiji RF/AN",
            "Spectre AN",
            "Spectre RF/AN",
        ],
    );
    for dataset in Dataset::MAIN_SIX {
        let pct = |gpu: &str, v: Variant| {
            let base = times[&(gpu, dataset, Variant::Base)];
            let t = times[&(gpu, dataset, v)];
            format!("{:.2}%", 100.0 * base / t)
        };
        t.row(vec![
            dataset.spec().name.to_owned(),
            pct("Fiji", Variant::An),
            pct("Fiji", Variant::RfAn),
            pct("Spectre", Variant::An),
            pct("Spectre", Variant::RfAn),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    const TEST_SET: [Dataset; 3] = [
        Dataset::Synthetic,
        Dataset::SocLiveJournal1,
        Dataset::RoadNY,
    ];

    #[test]
    fn rfan_wins_or_ties_at_test_scale() {
        let times = measure_for(Scale::TEST, &TEST_SET, &Sched::new(4));
        for (gpu, _) in platforms() {
            for dataset in TEST_SET {
                let rfan = times[&(gpu.name, dataset, Variant::RfAn)];
                let base = times[&(gpu.name, dataset, Variant::Base)];
                let an = times[&(gpu.name, dataset, Variant::An)];
                // The paper's own Table 4 has near-parity cells (99% on
                // Spectre roadmaps): at miniature scale the most we can
                // require is "never meaningfully slower".
                assert!(
                    rfan <= 1.15 * base.min(an),
                    "{} {:?}: rfan {rfan} base {base} an {an}",
                    gpu.name,
                    dataset
                );
            }
        }
        // On the saturating synthetic dataset the win must be strict and
        // large on the big GPU.
        let rfan = times[&("Fiji", Dataset::Synthetic, Variant::RfAn)];
        let base = times[&("Fiji", Dataset::Synthetic, Variant::Base)];
        assert!(
            base > 2.0 * rfan,
            "synthetic gap too small: {base} vs {rfan}"
        );
    }

    #[test]
    fn tables_render_one_row_per_dataset() {
        let full = measure(Scale::TEST, &Sched::new(4));
        assert_eq!(table3(&full).num_rows(), 12);
        assert_eq!(table4(&full).num_rows(), 6);
    }

    #[test]
    fn parallel_measurement_matches_serial_exactly() {
        let serial = measure_for(Scale::TEST, &TEST_SET, &Sched::serial());
        let parallel = measure_for(Scale::TEST, &TEST_SET, &Sched::new(4));
        assert_eq!(serial.len(), parallel.len());
        for (key, s) in &serial {
            let p = parallel[key];
            assert!(s == &p, "{key:?}: serial {s} vs parallel {p}");
        }
    }
}
