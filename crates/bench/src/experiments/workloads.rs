//! Workload matrix: every [`PtWorkload`] on the generic
//! persistent-thread core, run over all six dataset shapes and validated
//! against its sequential oracle.
//!
//! Not a figure from the paper — the paper evaluates BFS only and
//! *claims* the queue generalizes ("a specialized concurrent queue for
//! scheduling irregular workloads"). This experiment quantifies that
//! claim on the reproduction: BFS, SSSP, min-label connected components,
//! and best-contribution PageRank-delta all run through the same
//! `PtKernel` / RF/AN queue, every run exact against its oracle and
//! audited retry-free. The table reports per-(workload, dataset) rounds,
//! work cycles, scheduler atomics, and simulated time; the aggregate
//! per-workload stats (rounds, rounds/sec, retry-free verdict) land in
//! the `workloads` section of `BENCH_repro.json`.
//!
//! Like every other experiment, the table is byte-identical at any
//! `--jobs` count — wall-clock lives only in the JSON, which is
//! documented to vary.

use super::common::{record_profile, record_workload, DatasetCache};
use crate::report::Table;
use crate::{Scale, Sched};
use gpu_queue::Variant;
use pt_bfs::workload::{Bfs, ConnectedComponents, PrDelta, PtWorkload, Sssp};
use pt_bfs::{run_workload, PtConfig, Run};
use ptq_graph::{random_weights, Csr, Dataset};
use simt::GpuConfig;

/// Seed for the deterministic SSSP edge weights.
pub const WEIGHT_SEED: u64 = 0x57ED;

/// Per-dataset fractions *relative to the run's `--scale`*, chosen like
/// the chaos experiment's: every shape lands near 1–2.5k vertices at the
/// default scale (CC seeds all `n` vertices, so the matrix would
/// otherwise dominate a `repro all` run).
const WORKLOAD_REL: [(Dataset, f64); 6] = [
    (Dataset::Synthetic, 0.004),
    (Dataset::GplusCombined, 0.1),
    (Dataset::SocLiveJournal1, 0.006),
    (Dataset::RoadNY, 0.1),
    (Dataset::RoadLKS, 0.01),
    (Dataset::RoadUSA, 0.002),
];

/// The four workloads of the matrix, in table order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Kind {
    Bfs,
    Sssp,
    Cc,
    PrDelta,
}

const KINDS: [Kind; 4] = [Kind::Bfs, Kind::Sssp, Kind::Cc, Kind::PrDelta];

/// One oracle-validated (workload, dataset) measurement.
#[derive(Clone, Debug, PartialEq)]
pub struct Row {
    /// Workload name ([`PtWorkload::name`]).
    pub workload: &'static str,
    /// Dataset name.
    pub dataset: &'static str,
    /// Vertices of the sliced graph.
    pub vertices: usize,
    /// Vertices the run reached (workload-defined).
    pub reached: usize,
    /// Simulated rounds.
    pub rounds: u64,
    /// Work cycles across all wavefronts.
    pub work_cycles: u64,
    /// Scheduler atomics (the queue's share of the atomic traffic).
    pub scheduler_atomics: u64,
    /// Simulated milliseconds.
    pub sim_ms: f64,
    /// Zero CAS attempts and zero queue-empty retries (the RF/AN claim).
    pub retry_free: bool,
}

/// Runs one workload on one graph through RF/AN, validates it against
/// the sequential oracle, and panics on any divergence — the harness
/// must never report numbers from a wrong traversal.
fn validated_run<W: PtWorkload>(gpu: &GpuConfig, graph: &Csr, workload: &W, wgs: usize) -> Run {
    let mut config = PtConfig::for_workload(workload, Variant::RfAn, wgs);
    config.engine_workers = super::common::engine_workers();
    let run = run_workload(gpu, graph, workload, &config)
        .unwrap_or_else(|e| panic!("{}: {e}", workload.name()));
    workload
        .validate(graph, &run.values)
        .unwrap_or_else(|(v, want, got)| {
            panic!(
                "{}: oracle mismatch at vertex {v}: want {want} got {got}",
                workload.name()
            )
        });
    record_profile(&run.profile);
    run
}

fn run_kind(
    gpu: &GpuConfig,
    graph: &Csr,
    kind: Kind,
    source: u32,
    wgs: usize,
) -> (&'static str, Run) {
    match kind {
        Kind::Bfs => ("bfs", validated_run(gpu, graph, &Bfs::new(source), wgs)),
        Kind::Sssp => {
            let weights = random_weights(graph, 10, WEIGHT_SEED);
            let sssp = Sssp::new(source, weights);
            ("sssp", validated_run(gpu, graph, &sssp, wgs))
        }
        Kind::Cc => ("cc", validated_run(gpu, graph, &ConnectedComponents, wgs)),
        Kind::PrDelta => (
            "pr-delta",
            validated_run(gpu, graph, &PrDelta::new(source), wgs),
        ),
    }
}

/// Measures the workload matrix on Spectre at its headline occupancy.
///
/// # Panics
/// Panics if any run diverges from its sequential oracle.
pub fn measure(scale: Scale, sched: &Sched) -> Vec<Row> {
    let gpu = GpuConfig::spectre();
    let wgs = gpu.num_cus * gpu.wgs_per_cu;
    let grid: Vec<(Kind, Dataset, f64)> = KINDS
        .iter()
        .flat_map(|&k| WORKLOAD_REL.iter().map(move |&(d, rel)| (k, d, rel)))
        .collect();
    sched.par_map(&grid, |_, &(kind, dataset, rel)| {
        let slice = Scale::new((scale.fraction() * rel).min(1.0));
        let graph = DatasetCache::global().get(dataset, slice);
        let wall = std::time::Instant::now();
        let (name, run) = run_kind(&gpu, &graph, kind, dataset.source(), wgs);
        let retry_free = run.metrics.cas_attempts == 0 && run.metrics.queue_empty_retries == 0;
        record_workload(
            name,
            run.metrics.rounds,
            wall.elapsed().as_secs_f64(),
            retry_free,
        );
        Row {
            workload: name,
            dataset: dataset.spec().name,
            vertices: graph.num_vertices(),
            reached: run.reached,
            rounds: run.metrics.rounds,
            work_cycles: run.metrics.work_cycles,
            scheduler_atomics: run.metrics.scheduler_atomics,
            sim_ms: run.seconds * 1e3,
            retry_free,
        }
    })
}

/// Renders the workload matrix table.
pub fn table(rows: &[Row]) -> Table {
    let mut t = Table::new(
        "Workloads: four irregular workloads on the generic PT core (RF/AN, Spectre), \
         each exact against its sequential oracle",
        &[
            "Workload",
            "Dataset",
            "|V|",
            "Reached",
            "Rounds",
            "Work cycles",
            "Sched atomics",
            "Sim ms",
            "Retry-free",
        ],
    );
    for r in rows {
        t.row(vec![
            r.workload.to_owned(),
            r.dataset.to_owned(),
            r.vertices.to_string(),
            r.reached.to_string(),
            r.rounds.to_string(),
            r.work_cycles.to_string(),
            r.scheduler_atomics.to_string(),
            format!("{:.4}", r.sim_ms),
            if r.retry_free { "yes" } else { "NO" }.to_owned(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_covers_all_workloads_and_is_job_invariant() {
        let serial = measure(Scale::new(0.02), &Sched::new(1));
        let parallel = measure(Scale::new(0.02), &Sched::new(4));
        assert_eq!(serial.len(), KINDS.len() * WORKLOAD_REL.len());
        // Deterministic simulator + seeded inputs: bit-identical rows at
        // any job count — the property the CI workloads step byte-diffs.
        assert_eq!(serial, parallel);
        for r in &serial {
            assert!(r.retry_free, "{}/{}: RF/AN retried", r.workload, r.dataset);
            assert!(r.rounds > 0);
        }
        // CC labels every vertex on every shape.
        assert!(serial
            .iter()
            .filter(|r| r.workload == "cc")
            .all(|r| r.reached == r.vertices));
    }
}
