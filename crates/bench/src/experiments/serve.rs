//! `repro serve` — the overload-safe serving core under four offered
//! loads.
//!
//! Four seeded arrival traces exercise the service's full outcome
//! taxonomy on the six-dataset pool:
//!
//! * **steady** — generous deadlines, wide arrival gaps: every query
//!   completes first try (the no-drama baseline).
//! * **overload** — a burst of near-simultaneous arrivals against a
//!   tiny backlog bound and tight deadlines: typed `QueueFull`
//!   backpressure plus deadline-based shedding, while every admitted
//!   query still reaches a terminal state.
//! * **overload-batched** — the *same* overload trace under the
//!   batched, weighted-fair, co-resident core
//!   ([`ServiceConfig::batched`]): windows drain whole DRR rounds,
//!   compatible queries fuse into multi-source launches, and same-kind
//!   launches overlap on the device. `measure` enforces that this leg
//!   completes strictly more queries per simulated second than the
//!   serial overload leg and fuses at least one batch.
//! * **faulted** — seeded fault plans on every third query (retry via
//!   checkpoint resume with backoff) plus one watchdog-poisoned query
//!   that exhausts its retry budget, is quarantined with its recovery
//!   log, and gets its resubmission rejected at admission.
//!
//! `measure` is also a conformance harness: it panics if a leg fails
//! its invariants (zero admission enqueue errors, zero execution-side
//! `QueueFull` aborts on the segmented variant, the expected outcome
//! mix per leg — one declarative [`LegChecks`] table shared by every
//! leg), so `repro serve` doubles as the robustness gate CI runs
//! serial vs parallel and byte-diffs.

use ptq_graph::Dataset;

use super::common::{record_rounds, record_serve, ServeBench};
use crate::report::Table;
use crate::serve::{
    ArrivalTrace, Disposition, OutcomeLog, Service, ServiceConfig, TraceParams, WorkloadKind,
};
use crate::{Scale, Sched};

/// Trace seed for every serve leg.
pub const SEED: u64 = 0x5E4E;

/// The six-dataset pool with per-dataset scale fractions (same spirit
/// as the chaos matrix: comparable simulated sizes across datasets).
const SERVE_POOL: &[(Dataset, f64)] = &[
    (Dataset::Synthetic, 0.004),
    (Dataset::GplusCombined, 0.1),
    (Dataset::SocLiveJournal1, 0.006),
    (Dataset::RoadNY, 0.1),
    (Dataset::RoadLKS, 0.01),
    (Dataset::RoadUSA, 0.002),
];

/// One serve leg: a named trace plus the service configuration it runs
/// under.
pub struct Leg {
    /// Leg name ("steady", "overload", "faulted").
    pub name: &'static str,
    /// The offered load.
    pub trace: ArrivalTrace,
    /// The service policy under test.
    pub config: ServiceConfig,
}

/// The burst trace both overload legs replay: everything lands before
/// the first query finishes, so the backlog fills to its bound (typed
/// `QueueFull` rejections for the spill), the short end of the
/// deadline draw sheds part of what fits, and the dispatcher sees a
/// full-depth ready window when the device frees.
fn overload_trace() -> ArrivalTrace {
    ArrivalTrace::seeded(
        SEED ^ 0x10AD,
        &TraceParams {
            queries: 16,
            mean_gap_cycles: 2_000,
            deadline_range: (100_000, 8_000_000),
            datasets: SERVE_POOL,
            fault_every: 0,
            faults_per_query: 0,
        },
    )
}

/// The four standard legs at `scale`.
pub fn legs(scale: Scale) -> Vec<Leg> {
    let steady = Leg {
        name: "steady",
        trace: ArrivalTrace::seeded(
            SEED,
            &TraceParams {
                queries: 10,
                mean_gap_cycles: 3_000_000,
                deadline_range: (400_000_000, 800_000_000),
                datasets: SERVE_POOL,
                fault_every: 0,
                faults_per_query: 0,
            },
        ),
        config: ServiceConfig::standard(scale),
    };

    let mut overload_config = ServiceConfig::standard(scale);
    overload_config.backlog_limit = 5;
    let overload = Leg {
        name: "overload",
        trace: overload_trace(),
        config: overload_config,
    };

    // The same burst, served by the batched co-resident core: the only
    // config delta against "overload" is the batching policy, so the
    // QPS gap between the two legs isolates what fusing buys. The
    // 5-deep window over 4 workload kinds guarantees (pigeonhole) a
    // same-kind pair in the burst's full window, so the leg always has
    // at least one fused launch regardless of the trace seed's draws.
    let mut batched_config = ServiceConfig::batched(scale);
    batched_config.backlog_limit = 5;
    batched_config.batching = Some(crate::serve::BatchPolicy { max_coresident: 5 });
    let overload_batched = Leg {
        name: "overload-batched",
        trace: overload_trace(),
        config: batched_config,
    };

    let mut faulted_trace = ArrivalTrace::seeded(
        SEED ^ 0xFA17,
        &TraceParams {
            queries: 9,
            mean_gap_cycles: 3_000_000,
            deadline_range: (400_000_000, 800_000_000),
            datasets: SERVE_POOL,
            fault_every: 3,
            faults_per_query: 1,
        },
    );
    let poison = faulted_trace.push_poison(WorkloadKind::Bfs, Dataset::RoadNY, 0.1, 2, 1_000_000);
    // Arrives long after the poison query's backoff ladder has run dry,
    // so it meets the quarantine instead of re-running the poison.
    faulted_trace.push_resubmission(poison, 80_000_000);
    let faulted = Leg {
        name: "faulted",
        trace: faulted_trace,
        config: ServiceConfig::standard(scale),
    };

    vec![steady, overload, overload_batched, faulted]
}

/// Runs every leg, enforces its invariants, and records the `serve`
/// BENCH section. The returned logs are byte-identical at any `sched`
/// width and engine worker budget.
pub fn measure(scale: Scale, sched: &Sched) -> Vec<(Leg, OutcomeLog)> {
    let results: Vec<(Leg, OutcomeLog)> = legs(scale)
        .into_iter()
        .map(|leg| {
            eprintln!(
                "  serving {} trace ({} queries) ...",
                leg.name,
                leg.trace.queries.len()
            );
            let service = Service::new(leg.config.clone());
            let profiles = service.profiles(&leg.trace, sched);
            record_rounds(
                profiles
                    .iter()
                    .flat_map(|p| p.attempts.iter().map(|a| a.rounds))
                    .sum(),
            );
            let log = service.replay(&leg.trace, &profiles);
            enforce(leg.name, &log);
            let s = log.summary();
            record_serve(ServeBench {
                leg: leg.name,
                queries: s.queries,
                completed: s.completed,
                retried: s.retried,
                shed: s.shed,
                quarantined: s.quarantined,
                rejected_queue_full: s.rejected_queue_full,
                rejected_quarantined: s.rejected_quarantined,
                batched: s.batched,
                p50_latency_cycles: s.p50_latency_cycles,
                p99_latency_cycles: s.p99_latency_cycles,
                makespan_cycles: s.makespan_cycles,
                throughput_qps: s.throughput_qps(&service.config().gpu),
                shed_rate: s.shed_rate,
                quarantine_rate: s.quarantine_rate,
            });
            (leg, log)
        })
        .collect();

    // Cross-leg gate: on the identical burst trace, the batched
    // co-resident core must beat the serial core on completed queries
    // per simulated second, and must actually have fused something —
    // otherwise the win (or the tie) is a regression to diagnose, not a
    // data point.
    let leg_qps = |name: &str| -> f64 {
        let (leg, log) = results
            .iter()
            .find(|(leg, _)| leg.name == name)
            .unwrap_or_else(|| panic!("missing serve leg {name}"));
        log.summary().throughput_qps(&leg.config.gpu)
    };
    let batched_log = &results
        .iter()
        .find(|(leg, _)| leg.name == "overload-batched")
        .expect("missing serve leg overload-batched")
        .1;
    assert!(
        batched_log.batched() >= 1,
        "overload-batched: the burst never produced a fused launch"
    );
    assert!(
        leg_qps("overload-batched") > leg_qps("overload"),
        "overload-batched ({:.1} QPS) must strictly beat serial overload ({:.1} QPS)",
        leg_qps("overload-batched"),
        leg_qps("overload"),
    );
    results
}

/// One leg's declarative invariants. The former per-leg `match` arms
/// each hand-rolled the same four checks (allowed terminal states,
/// disposition floors, disposition pins, retry expectations); this
/// table is the single shared checker they all run through now.
struct LegChecks {
    /// Dispositions a query may legally end in.
    allowed: &'static [Disposition],
    /// `(disposition, n)` floors: at least `n` queries end this way.
    at_least: &'static [(Disposition, u64)],
    /// `(disposition, n)` pins: exactly `n` queries end this way.
    exact: &'static [(Disposition, u64)],
    /// Minimum completed-through-retry count.
    min_retried: u64,
    /// When set, every completed query used exactly this many attempts
    /// (the steady "first try" claim).
    completed_attempts: Option<u32>,
}

/// The invariant table, one row per leg.
fn checks_for(leg: &str) -> LegChecks {
    use Disposition::*;
    match leg {
        "steady" => LegChecks {
            allowed: &[Completed],
            at_least: &[],
            exact: &[],
            min_retried: 0,
            completed_attempts: Some(1),
        },
        // Every admitted query reaches a terminal state without a
        // crash: completed, or shed at first dispatch. Both overload
        // legs promise the same taxonomy; the batched one additionally
        // faces the cross-leg QPS gate in `measure`.
        "overload" | "overload-batched" => LegChecks {
            allowed: &[Completed, Shed, RejectedQueueFull],
            at_least: &[(Completed, 1), (Shed, 1), (RejectedQueueFull, 1)],
            exact: &[(Quarantined, 0)],
            min_retried: 0,
            completed_attempts: None,
        },
        // Quarantine isolates the poison family only: with exactly one
        // quarantine and one rejected resubmission, the allowed-state
        // set forces every other query to complete.
        "faulted" => LegChecks {
            allowed: &[Completed, Quarantined, RejectedQuarantined],
            at_least: &[],
            exact: &[(Quarantined, 1), (RejectedQuarantined, 1)],
            min_retried: 1,
            completed_attempts: None,
        },
        other => panic!("unknown serve leg {other}"),
    }
}

/// Leg invariants. Violations are bugs, not data points — panic like
/// the workload oracle checks do.
fn enforce(leg: &str, log: &OutcomeLog) {
    assert_eq!(
        log.admission_errors, 0,
        "{leg}: the segmented admission path must never refuse a token"
    );
    assert_eq!(
        log.execution_queue_full, 0,
        "{leg}: the segmented execution variant must never abort queue-full"
    );
    let checks = checks_for(leg);
    for o in &log.outcomes {
        assert!(
            checks.allowed.contains(&o.disposition),
            "{leg}: query {} ended {:?}, not one of {:?}",
            o.id,
            o.disposition,
            checks.allowed
        );
        if let Some(attempts) = checks.completed_attempts {
            if o.disposition == Disposition::Completed {
                assert_eq!(
                    o.attempts, attempts,
                    "{leg}: query {} took {} attempts",
                    o.id, o.attempts
                );
            }
        }
    }
    for &(disposition, n) in checks.at_least {
        assert!(
            log.count(disposition) >= n,
            "{leg}: fewer than {n} queries ended {disposition:?}"
        );
    }
    for &(disposition, n) in checks.exact {
        assert_eq!(
            log.count(disposition),
            n,
            "{leg}: expected exactly {n} queries ending {disposition:?}"
        );
    }
    assert!(
        log.retried() >= checks.min_retried,
        "{leg}: no query completed through a checkpoint-resumed retry"
    );
    // Quarantine always keeps the recovery log as evidence, whatever
    // the leg.
    for o in &log.outcomes {
        if o.disposition == Disposition::Quarantined {
            assert!(
                o.recovery.is_some(),
                "{leg}: quarantined query {} lost its recovery log",
                o.id
            );
        }
    }
}

/// The cross-leg summary table (stem `serve_summary`).
pub fn summary_table(results: &[(Leg, OutcomeLog)]) -> Table {
    let mut t = Table::new(
        "Serve: admission, shedding, retry, quarantine, and batching (SegRF/AN, Spectre)",
        &[
            "Leg",
            "Queries",
            "Completed",
            "Retried",
            "Batched",
            "Shed",
            "Quarantined",
            "RejFull",
            "RejQuar",
            "p50 cycles",
            "p99 cycles",
            "QPS",
            "Segments",
        ],
    );
    // An absent percentile (nothing completed) renders as "-", never as
    // a fake 0.
    let cycles = |v: Option<u64>| v.map_or_else(|| "-".to_owned(), |v| v.to_string());
    for (leg, log) in results {
        let s = log.summary();
        t.row(vec![
            leg.name.to_owned(),
            s.queries.to_string(),
            s.completed.to_string(),
            s.retried.to_string(),
            s.batched.to_string(),
            s.shed.to_string(),
            s.quarantined.to_string(),
            s.rejected_queue_full.to_string(),
            s.rejected_quarantined.to_string(),
            cycles(s.p50_latency_cycles),
            cycles(s.p99_latency_cycles),
            format!("{:.1}", s.throughput_qps(&leg.config.gpu)),
            log.admission_segments.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_legs_are_job_invariant() {
        let scale = Scale::new(0.02);
        let serial: Vec<OutcomeLog> = measure(scale, &Sched::serial())
            .into_iter()
            .map(|(_, log)| log)
            .collect();
        let parallel: Vec<OutcomeLog> = measure(scale, &Sched::new(4))
            .into_iter()
            .map(|(_, log)| log)
            .collect();
        assert_eq!(serial, parallel);
    }
}
