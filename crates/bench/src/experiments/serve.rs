//! `repro serve` — the overload-safe serving core under three offered
//! loads.
//!
//! Three seeded arrival traces exercise the service's full outcome
//! taxonomy on the six-dataset pool:
//!
//! * **steady** — generous deadlines, wide arrival gaps: every query
//!   completes first try (the no-drama baseline).
//! * **overload** — a burst of near-simultaneous arrivals against a
//!   tiny backlog bound and tight deadlines: typed `QueueFull`
//!   backpressure plus deadline-based shedding, while every admitted
//!   query still reaches a terminal state.
//! * **faulted** — seeded fault plans on every third query (retry via
//!   checkpoint resume with backoff) plus one watchdog-poisoned query
//!   that exhausts its retry budget, is quarantined with its recovery
//!   log, and gets its resubmission rejected at admission.
//!
//! `measure` is also a conformance harness: it panics if a leg fails
//! its invariants (zero admission enqueue errors, zero execution-side
//! `QueueFull` aborts on the segmented variant, the expected outcome
//! mix per leg), so `repro serve` doubles as the robustness gate CI
//! runs serial vs parallel and byte-diffs.

use ptq_graph::Dataset;

use super::common::{record_rounds, record_serve, ServeBench};
use crate::report::Table;
use crate::serve::{
    ArrivalTrace, Disposition, OutcomeLog, Service, ServiceConfig, TraceParams, WorkloadKind,
};
use crate::{Scale, Sched};

/// Trace seed for every serve leg.
pub const SEED: u64 = 0x5E4E;

/// The six-dataset pool with per-dataset scale fractions (same spirit
/// as the chaos matrix: comparable simulated sizes across datasets).
const SERVE_POOL: &[(Dataset, f64)] = &[
    (Dataset::Synthetic, 0.004),
    (Dataset::GplusCombined, 0.1),
    (Dataset::SocLiveJournal1, 0.006),
    (Dataset::RoadNY, 0.1),
    (Dataset::RoadLKS, 0.01),
    (Dataset::RoadUSA, 0.002),
];

/// One serve leg: a named trace plus the service configuration it runs
/// under.
pub struct Leg {
    /// Leg name ("steady", "overload", "faulted").
    pub name: &'static str,
    /// The offered load.
    pub trace: ArrivalTrace,
    /// The service policy under test.
    pub config: ServiceConfig,
}

/// The three standard legs at `scale`.
pub fn legs(scale: Scale) -> Vec<Leg> {
    let steady = Leg {
        name: "steady",
        trace: ArrivalTrace::seeded(
            SEED,
            &TraceParams {
                queries: 10,
                mean_gap_cycles: 3_000_000,
                deadline_range: (400_000_000, 800_000_000),
                datasets: SERVE_POOL,
                fault_every: 0,
                faults_per_query: 0,
            },
        ),
        config: ServiceConfig::standard(scale),
    };

    // Burst arrivals against a 3-query backlog: everything lands before
    // the first query finishes, so admission must reject most of the
    // burst, and the tight deadline draws shed part of what fits.
    let mut overload_config = ServiceConfig::standard(scale);
    overload_config.backlog_limit = 3;
    let overload = Leg {
        name: "overload",
        trace: ArrivalTrace::seeded(
            SEED ^ 0x10AD,
            &TraceParams {
                queries: 16,
                mean_gap_cycles: 2_000,
                deadline_range: (100_000, 3_000_000),
                datasets: SERVE_POOL,
                fault_every: 0,
                faults_per_query: 0,
            },
        ),
        config: overload_config,
    };

    let mut faulted_trace = ArrivalTrace::seeded(
        SEED ^ 0xFA17,
        &TraceParams {
            queries: 9,
            mean_gap_cycles: 3_000_000,
            deadline_range: (400_000_000, 800_000_000),
            datasets: SERVE_POOL,
            fault_every: 3,
            faults_per_query: 1,
        },
    );
    let poison = faulted_trace.push_poison(WorkloadKind::Bfs, Dataset::RoadNY, 0.1, 2, 1_000_000);
    // Arrives long after the poison query's backoff ladder has run dry,
    // so it meets the quarantine instead of re-running the poison.
    faulted_trace.push_resubmission(poison, 80_000_000);
    let faulted = Leg {
        name: "faulted",
        trace: faulted_trace,
        config: ServiceConfig::standard(scale),
    };

    vec![steady, overload, faulted]
}

/// Runs every leg, enforces its invariants, and records the `serve`
/// BENCH section. The returned logs are byte-identical at any `sched`
/// width and engine worker budget.
pub fn measure(scale: Scale, sched: &Sched) -> Vec<(Leg, OutcomeLog)> {
    legs(scale)
        .into_iter()
        .map(|leg| {
            eprintln!(
                "  serving {} trace ({} queries) ...",
                leg.name,
                leg.trace.queries.len()
            );
            let service = Service::new(leg.config.clone());
            let profiles = service.profiles(&leg.trace, sched);
            record_rounds(
                profiles
                    .iter()
                    .flat_map(|p| p.attempts.iter().map(|a| a.rounds))
                    .sum(),
            );
            let log = service.replay(&leg.trace, &profiles);
            enforce(leg.name, &log);
            let s = log.summary();
            record_serve(ServeBench {
                leg: leg.name,
                queries: s.queries,
                completed: s.completed,
                retried: s.retried,
                shed: s.shed,
                quarantined: s.quarantined,
                rejected_queue_full: s.rejected_queue_full,
                rejected_quarantined: s.rejected_quarantined,
                p50_latency_cycles: s.p50_latency_cycles,
                p99_latency_cycles: s.p99_latency_cycles,
                makespan_cycles: s.makespan_cycles,
                throughput_qps: s.throughput_qps(&service.config().gpu),
                shed_rate: s.shed_rate,
                quarantine_rate: s.quarantine_rate,
            });
            (leg, log)
        })
        .collect()
}

/// Leg invariants. Violations are bugs, not data points — panic like
/// the workload oracle checks do.
fn enforce(leg: &str, log: &OutcomeLog) {
    assert_eq!(
        log.admission_errors, 0,
        "{leg}: the segmented admission path must never refuse a token"
    );
    assert_eq!(
        log.execution_queue_full, 0,
        "{leg}: the segmented execution variant must never abort queue-full"
    );
    match leg {
        "steady" => {
            for o in &log.outcomes {
                assert_eq!(
                    o.disposition,
                    Disposition::Completed,
                    "steady: query {} must complete first try",
                    o.id
                );
                assert_eq!(o.attempts, 1, "steady: query {} retried", o.id);
            }
        }
        "overload" => {
            assert!(
                log.count(Disposition::Completed) >= 1,
                "overload: nothing completed"
            );
            assert!(log.count(Disposition::Shed) >= 1, "overload: nothing shed");
            assert!(
                log.count(Disposition::RejectedQueueFull) >= 1,
                "overload: no backpressure"
            );
            assert_eq!(log.count(Disposition::Quarantined), 0);
            // Every admitted query reaches a terminal state without a
            // crash: completed, or shed at first dispatch.
            for o in &log.outcomes {
                assert!(
                    matches!(
                        o.disposition,
                        Disposition::Completed | Disposition::Shed | Disposition::RejectedQueueFull
                    ),
                    "overload: query {} ended {:?}",
                    o.id,
                    o.disposition
                );
            }
        }
        "faulted" => {
            assert!(
                log.retried() >= 1,
                "faulted: no query completed through a checkpoint-resumed retry"
            );
            assert_eq!(
                log.count(Disposition::Quarantined),
                1,
                "faulted: exactly the poison query must be quarantined"
            );
            assert_eq!(
                log.count(Disposition::RejectedQuarantined),
                1,
                "faulted: the resubmission must be rejected at admission"
            );
            // Quarantine isolates the poison family only: every other
            // query completes.
            assert_eq!(
                log.count(Disposition::Completed),
                log.outcomes.len() as u64 - 2,
                "faulted: a non-poison query failed to complete"
            );
            let quarantined = log
                .outcomes
                .iter()
                .find(|o| o.disposition == Disposition::Quarantined)
                .expect("counted above");
            assert!(
                quarantined.recovery.is_some(),
                "faulted: quarantine must keep the recovery log as evidence"
            );
        }
        other => panic!("unknown serve leg {other}"),
    }
}

/// The cross-leg summary table (stem `serve_summary`).
pub fn summary_table(results: &[(Leg, OutcomeLog)]) -> Table {
    let mut t = Table::new(
        "Serve: admission control, shedding, retry, and quarantine (SegRF/AN, Spectre)",
        &[
            "Leg",
            "Queries",
            "Completed",
            "Retried",
            "Shed",
            "Quarantined",
            "RejFull",
            "RejQuar",
            "p50 cycles",
            "p99 cycles",
            "QPS",
            "Segments",
        ],
    );
    for (leg, log) in results {
        let s = log.summary();
        let service = Service::new(leg.config.clone());
        t.row(vec![
            leg.name.to_owned(),
            s.queries.to_string(),
            s.completed.to_string(),
            s.retried.to_string(),
            s.shed.to_string(),
            s.quarantined.to_string(),
            s.rejected_queue_full.to_string(),
            s.rejected_quarantined.to_string(),
            s.p50_latency_cycles.to_string(),
            s.p99_latency_cycles.to_string(),
            format!("{:.1}", s.throughput_qps(&service.config().gpu)),
            log.admission_segments.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_legs_are_job_invariant() {
        let scale = Scale::new(0.02);
        let serial: Vec<OutcomeLog> = measure(scale, &Sched::serial())
            .into_iter()
            .map(|(_, log)| log)
            .collect();
        let parallel: Vec<OutcomeLog> = measure(scale, &Sched::new(4))
            .into_iter()
            .map(|(_, log)| log)
            .collect();
        assert_eq!(serial, parallel);
    }
}
