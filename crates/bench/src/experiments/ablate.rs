//! Ablation studies beyond the paper's own experiments.
//!
//! * **Chunk size** — the paper fixes work cycles at 4 uniform sub-tasks
//!   ("Empirically we found work cycles of 4 sub-tasks works well",
//!   §3.3 footnote). The sweep shows why: small chunks dequeue too often
//!   (scheduler overhead), large chunks starve other lanes through
//!   divergence.
//! * **Occupancy** — the paper launches 4 workgroups per CU "to
//!   facilitate zero-cost thread switching". The sweep varies resident
//!   workgroups per CU and exposes the latency-hiding effect.

use super::common::{pt_config, DatasetCache};
use crate::report::{fmt_f64, Table};
use crate::{Scale, Sched};
use gpu_queue::Variant;
use pt_bfs::run_bfs;
use ptq_graph::Dataset;
use simt::GpuConfig;

/// The full 2×2 property matrix (adds the RF-only variant the paper does
/// not evaluate): retry-free × arbitrary-n, on the saturating synthetic
/// dataset where both properties matter most.
pub fn matrix_table(scale: Scale, gpu: &GpuConfig, sched: &Sched) -> Table {
    let graph = DatasetCache::global().get(Dataset::Synthetic, scale);
    let wgs = gpu.num_cus * gpu.wgs_per_cu;
    let mut t = Table::new(
        format!(
            "Ablation ({}): 2x2 property matrix on the synthetic dataset",
            gpu.name
        ),
        &[
            "Variant",
            "retry-free",
            "arbitrary-n",
            "Time (s)",
            "Atomics",
            "Retries",
        ],
    );
    let rows = sched.par_map(&Variant::MATRIX, |_, &variant| {
        let run = run_bfs(gpu, &graph, 0, &pt_config(variant, wgs))
            .unwrap_or_else(|e| panic!("{variant:?}: {e}"));
        vec![
            variant.label().to_owned(),
            if variant.is_retry_free() { "yes" } else { "no" }.to_owned(),
            if variant.is_arbitrary_n() {
                "yes"
            } else {
                "no"
            }
            .to_owned(),
            fmt_f64(run.seconds),
            run.metrics.global_atomics.to_string(),
            run.metrics.total_retries().to_string(),
        ]
    });
    for row in rows {
        t.row(row);
    }
    t
}

/// Single shared queue vs. one-queue-per-CU with work stealing (the
/// Tzeng-style alternative the paper's related work surveys), across the
/// three workload regimes.
pub fn stealing_table(scale: Scale, gpu: &GpuConfig, sched: &Sched) -> Table {
    use pt_bfs::run_bfs_stealing;
    use ptq_graph::validate_levels;

    let wgs = gpu.num_cus * gpu.wgs_per_cu;
    let mut t = Table::new(
        format!(
            "Ablation ({}): single shared RF/AN queue vs distributed work stealing",
            gpu.name
        ),
        &[
            "Dataset",
            "Shared (s)",
            "Stealing (s)",
            "Stealing empty-scans",
        ],
    );
    let datasets = [
        Dataset::Synthetic,
        Dataset::SocLiveJournal1,
        Dataset::RoadNY,
    ];
    // The shared and stealing runs of a dataset are independent
    // simulations: fan them out as separate points so the scheduler can
    // overlap them instead of serializing each pair on one worker.
    let grid: Vec<(Dataset, bool)> = datasets
        .iter()
        .flat_map(|&dataset| [(dataset, false), (dataset, true)])
        .collect();
    let runs = sched.par_map_lpt(
        &grid,
        |_, &(dataset, _)| dataset.spec().vertices as u64,
        |_, &(dataset, steal)| {
            let graph = DatasetCache::global().get(dataset, scale);
            if steal {
                let stealing = run_bfs_stealing(gpu, &graph, 0, wgs)
                    .unwrap_or_else(|e| panic!("stealing on {dataset:?}: {e}"));
                validate_levels(&graph, 0, &stealing.values)
                    .unwrap_or_else(|_| panic!("stealing wrong levels on {dataset:?}"));
                (stealing.seconds, stealing.metrics.queue_empty_retries)
            } else {
                let shared = run_bfs(gpu, &graph, 0, &pt_config(Variant::RfAn, wgs))
                    .unwrap_or_else(|e| panic!("shared on {dataset:?}: {e}"));
                (shared.seconds, 0)
            }
        },
    );
    for (dataset, pair) in datasets.iter().zip(runs.chunks_exact(2)) {
        let (shared_seconds, _) = pair[0];
        let (stealing_seconds, empty_scans) = pair[1];
        t.row(vec![
            dataset.spec().name.to_owned(),
            fmt_f64(shared_seconds),
            fmt_f64(stealing_seconds),
            empty_scans.to_string(),
        ]);
    }
    t
}

/// Chunk sizes swept by [`chunk_table`].
pub const CHUNKS: [u32; 5] = [1, 2, 4, 8, 16];

/// Sweeps the work-cycle chunk size on the saturating synthetic dataset.
pub fn chunk_table(scale: Scale, gpu: &GpuConfig, sched: &Sched) -> Table {
    let graph = DatasetCache::global().get(Dataset::Synthetic, scale);
    let wgs = gpu.num_cus * gpu.wgs_per_cu;
    let mut t = Table::new(
        format!(
            "Ablation ({}): sub-tasks per work cycle (paper fixes 4)",
            gpu.name
        ),
        &["Chunk", "BASE time (s)", "AN time (s)", "RF/AN time (s)"],
    );
    let grid: Vec<(u32, Variant)> = CHUNKS
        .into_iter()
        .flat_map(|chunk| Variant::ALL.into_iter().map(move |v| (chunk, v)))
        .collect();
    let cells = sched.par_map(&grid, |_, &(chunk, variant)| {
        let mut config = pt_config(variant, wgs);
        config.chunk = chunk;
        let run = run_bfs(gpu, &graph, 0, &config)
            .unwrap_or_else(|e| panic!("chunk {chunk} {variant:?}: {e}"));
        fmt_f64(run.seconds)
    });
    for (chunk, row) in CHUNKS.into_iter().zip(cells.chunks(Variant::ALL.len())) {
        let mut cols = vec![chunk.to_string()];
        cols.extend_from_slice(row);
        t.row(cols);
    }
    t
}

/// Sweeps resident workgroups per CU (occupancy) at a fixed total number
/// of CUs, isolating the latency-hiding effect of extra wavefronts.
pub fn occupancy_table(scale: Scale, base_gpu: &GpuConfig, sched: &Sched) -> Table {
    let graph = DatasetCache::global().get(Dataset::Synthetic, scale);
    let mut t = Table::new(
        format!(
            "Ablation ({}): workgroups per CU (paper launches 4)",
            base_gpu.name
        ),
        &["WGs/CU", "Threads", "RF/AN time (s)"],
    );
    let rows = sched.par_map(&[1usize, 2, 4, 8], |_, &wgs_per_cu| {
        let mut gpu = base_gpu.clone();
        gpu.wgs_per_cu = wgs_per_cu;
        let wgs = gpu.num_cus * wgs_per_cu;
        let run = run_bfs(&gpu, &graph, 0, &pt_config(Variant::RfAn, wgs))
            .unwrap_or_else(|e| panic!("occupancy {wgs_per_cu}: {e}"));
        vec![
            wgs_per_cu.to_string(),
            (wgs * gpu.wave_size).to_string(),
            fmt_f64(run.seconds),
        ]
    });
    for row in rows {
        t.row(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_shows_both_properties_matter() {
        let gpu = GpuConfig::spectre();
        let t = matrix_table(Scale::new(0.01), &gpu, &Sched::new(4));
        assert_eq!(t.num_rows(), 4);
    }

    #[test]
    fn stealing_table_runs_and_validates() {
        let gpu = GpuConfig::spectre();
        let t = stealing_table(Scale::TEST, &gpu, &Sched::new(3));
        assert_eq!(t.num_rows(), 3);
    }

    #[test]
    fn chunk_sweep_runs_and_default_is_competitive() {
        let gpu = GpuConfig::spectre();
        let t = chunk_table(Scale::TEST, &gpu, &Sched::new(4));
        assert_eq!(t.num_rows(), CHUNKS.len());
    }

    #[test]
    fn more_occupancy_helps_until_saturation() {
        let gpu = GpuConfig::spectre();
        let graph = Dataset::Synthetic.build(Scale::new(0.01).fraction());
        let time_at = |wgs_per_cu: usize| {
            let mut g = gpu.clone();
            g.wgs_per_cu = wgs_per_cu;
            let wgs = g.num_cus * wgs_per_cu;
            run_bfs(&g, &graph, 0, &pt_config(Variant::RfAn, wgs))
                .unwrap()
                .seconds
        };
        let t1 = time_at(1);
        let t4 = time_at(4);
        assert!(t4 < t1, "4 wgs/cu ({t4}) should beat 1 ({t1})");
    }
}
