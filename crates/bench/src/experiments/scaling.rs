//! Scalability deep-dive: RF/AN speedup across workgroup counts with the
//! simulator's per-round bottleneck attribution (the quantitative story
//! behind Figure 4's headline claim of near-linear scaling).

use super::common::DatasetCache;
use crate::report::Table;
use crate::{Scale, Sched};
use gpu_queue::device::{make_wave_queue, QueueLayout};
use gpu_queue::Variant;
use pt_bfs::workload::Bfs;
use pt_bfs::{PtKernel, WorkBuffers};
use ptq_graph::Dataset;
use simt::{Engine, GpuConfig, Launch};

/// One traced RF/AN run at a given workgroup count.
fn traced_run(gpu: &GpuConfig, graph: &ptq_graph::Csr, wgs: usize) -> (f64, f64, f64, f64, f64) {
    let n = graph.num_vertices();
    let mut engine = Engine::new(gpu.clone());
    let mem = engine.memory_mut();
    mem.alloc_init("nodes", graph.row_offsets());
    mem.alloc_init("edges", graph.adjacency());
    let costs = mem.alloc("costs", n);
    mem.fill(costs, u32::MAX);
    mem.write_u32(costs, 0, 0);
    let inqueue = mem.alloc("inqueue", n);
    mem.write_u32(inqueue, 0, 1);
    let pending = mem.alloc("pending", 1);
    mem.write_u32(pending, 0, 1);
    let layout = QueueLayout::setup(mem, "q", (2 * n) as u32);
    layout.host_seed(mem, &[0]);
    let buffers = WorkBuffers {
        nodes: mem.buffer("nodes"),
        edges: mem.buffer("edges"),
        values: costs,
        inqueue,
        pending,
    };
    let report = engine
        .run(Launch::workgroups(wgs).with_trace(), |info| {
            PtKernel::new(
                make_wave_queue(Variant::RfAn, layout),
                Bfs::new(0),
                buffers,
                info.wave_size,
            )
        })
        .expect("traced run succeeds");
    let trace = report.trace.expect("trace requested");
    let (issue, latency, memory) = trace.bound_breakdown();
    (
        report.seconds,
        issue,
        latency,
        memory,
        trace.weighted_occupancy(),
    )
}

/// Renders the scaling table for one GPU.
pub fn table(scale: Scale, gpu: &GpuConfig, sched: &Sched) -> Table {
    let graph = DatasetCache::global().get(Dataset::Synthetic, scale);
    let mut t = Table::new(
        format!(
            "Scaling ({}): RF/AN speedup and bottleneck attribution on the synthetic dataset",
            gpu.name
        ),
        &[
            "nWG",
            "Time (s)",
            "Speedup",
            "Ideal",
            "Issue-bound",
            "Latency-bound",
            "Memory-bound",
            "Occupancy",
        ],
    );
    let sweep = gpu.workgroup_sweep();
    let runs = sched.par_map(&sweep, |_, &wgs| traced_run(gpu, &graph, wgs));
    let t1 = runs[0].0;
    for (&wgs, &(seconds, issue, latency, memory, occ)) in sweep.iter().zip(&runs) {
        t.row(vec![
            wgs.to_string(),
            format!("{seconds:.6}"),
            format!("{:.1}", t1 / seconds),
            wgs.to_string(),
            format!("{issue:.2}"),
            format!("{latency:.2}"),
            format!("{memory:.2}"),
            format!("{occ:.1}"),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn low_occupancy_is_latency_bound() {
        let gpu = GpuConfig::spectre();
        let graph = Dataset::Synthetic.build(0.01);
        let (_, issue, latency, _, occ) = traced_run(&gpu, &graph, 1);
        assert!(
            latency > issue,
            "one wavefront should be latency-bound: latency {latency} vs issue {issue}"
        );
        assert!((occ - 1.0).abs() < 0.2);
    }

    #[test]
    fn table_has_one_row_per_sweep_point() {
        let gpu = GpuConfig::spectre();
        let t = table(Scale::TEST, &gpu, &Sched::new(2));
        assert_eq!(t.num_rows(), gpu.workgroup_sweep().len());
    }
}
