//! Table 5: performance comparison with the CHAI BFS benchmark.
//!
//! CHAI's heterogeneous kernel runs only on the integrated GPU (Spectre):
//! "The discrete Fiji GPU cannot run this heterogeneous kernel because it
//! does not support cross cluster CPU/GPU atomic operations." The paper
//! reports RF/AN beating CHAI by 2.57× and 4.21× on its two roadmaps.

use super::common::{bfs_run, DatasetCache};
use crate::report::Table;
use crate::{Scale, Sched};
use gpu_queue::Variant;
use pt_bfs::baseline::run_chai;
use ptq_graph::{validate_levels, Dataset};
use simt::GpuConfig;

/// One row of Table 5.
#[derive(Clone, Debug)]
pub struct Row {
    /// Dataset name as the paper prints it.
    pub dataset: &'static str,
    /// CHAI kernel time (ms).
    pub chai_ms: f64,
    /// RF/AN kernel time (ms).
    pub rfan_ms: f64,
}

impl Row {
    /// RF/AN's speedup over CHAI.
    pub fn speedup(&self) -> f64 {
        self.chai_ms / self.rfan_ms
    }
}

/// Measures both CHAI datasets on the integrated GPU.
pub fn measure(scale: Scale, sched: &Sched) -> Vec<Row> {
    let gpu = GpuConfig::spectre();
    let wgs = gpu.num_cus * gpu.wgs_per_cu;
    sched.par_map(&[Dataset::ChaiNYR, Dataset::ChaiBAY], |_, &dataset| {
        let graph = DatasetCache::global().get(dataset, scale);
        let chai = run_chai(&gpu, &graph, dataset.source(), wgs)
            .unwrap_or_else(|e| panic!("CHAI on {dataset:?}: {e}"));
        validate_levels(&graph, dataset.source(), &chai.values)
            .unwrap_or_else(|_| panic!("CHAI produced wrong levels on {dataset:?}"));
        let rfan = bfs_run(&gpu, &graph, Variant::RfAn, wgs);
        Row {
            dataset: dataset.spec().name,
            chai_ms: chai.seconds * 1e3,
            rfan_ms: rfan.seconds * 1e3,
        }
    })
}

/// Renders Table 5.
pub fn table(rows: &[Row]) -> Table {
    let mut t = Table::new(
        "Table 5: performance comparison with CHAI BFS (ms, Spectre)",
        &["Dataset", "CHAI", "RF/AN", "Speedup"],
    );
    for r in rows {
        t.row(vec![
            r.dataset.to_owned(),
            format!("{:.4}", r.chai_ms),
            format!("{:.4}", r.rfan_ms),
            format!("{:.3}x", r.speedup()),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfan_beats_chai_on_both_datasets() {
        let rows = measure(Scale::TEST, &Sched::new(2));
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(
                r.speedup() > 1.0,
                "{}: speedup {} should exceed 1",
                r.dataset,
                r.speedup()
            );
        }
        assert_eq!(table(&rows).num_rows(), 2);
    }
}
