//! Giant-graph scale: the streamed construction + lazy-zeroing pipeline
//! against the naive path it replaced (ROADMAP item 5; not part of
//! `repro all`).
//!
//! Both legs produce the *same* giant-family graph and run the *same*
//! validated BFS — the experiment asserts the graphs, values, metrics,
//! and simulated seconds are identical, so the legs differ only in
//! host-side mechanics:
//!
//! * **naive** — the pre-optimization path: materialize the full edge
//!   list in a [`CsrBuilder`], eager arena zeroing (every recycled
//!   arena memset up front), and the historical 2.0× queue capacity.
//! * **tuned** — the streamed two-pass builder (`O(chunk)` transient
//!   memory, no edge list), zero-on-demand arenas, and the audited
//!   1.25× capacity (BFS enqueues each vertex at most once; the
//!   non-wrapping queue needs `n` slots plus headroom, and the runner
//!   still regrows on queue-full, so tightening is safe).
//!
//! The timed pipeline per leg is **build + device-setup churn**: one
//! graph construction plus [`SETUP_EPOCHS`] full device setups (engine,
//! graph upload, value/queue buffers, seed) — the allocation pattern a
//! checkpointed recovery run repeats every epoch (`run_epoch` stands up
//! a fresh engine per launch). The BFS run itself validates the legs but
//! is excluded from the throughput clock: the simulated traversal is
//! identical in both legs by construction, so including it would only
//! dilute the construction contrast being measured.
//!
//! Wall-clock throughput (edges/s per leg and the tuned/naive speedup)
//! goes to stderr and the `giant` section of `BENCH_repro.json`; the
//! emitted table carries only deterministic quantities and is
//! byte-identical at any `--jobs` count (the pipeline is serial by
//! design — the eager-zeroing toggle is process-global).

use super::common::{record_giant, record_profile, record_rounds, GiantBench};
use crate::report::Table;
use crate::Scale;
use gpu_queue::device::QueueLayout;
use gpu_queue::Variant;
use pt_bfs::{queue_capacity, run_bfs, PtConfig, Run, UNVISITED};
use ptq_graph::gen::{for_each_giant_edge, giant_with_chunk};
use ptq_graph::stream::DEFAULT_CHUNK_EDGES;
use ptq_graph::{validate_levels, Csr, CsrBuilder, Dataset};
use simt::{Engine, GpuConfig};
use std::time::Instant;

/// Device setups per timed leg — the churn of a recovery run that
/// relaunches from a checkpoint this many times.
pub const SETUP_EPOCHS: usize = 8;

/// Queue capacity factor of the naive leg (the historical default).
pub const NAIVE_FACTOR: f64 = 2.0;
/// Audited capacity factor of the tuned leg.
pub const TUNED_FACTOR: f64 = 1.25;

/// Plan workers of the timed engine-par leg. Deliberately *not* clamped
/// to the host's core count: the leg measures the engine's intra-run
/// parallelism itself, and the recorded `host_cores` says whether the
/// box could possibly profit (4 workers on 1 core cannot win — the
/// byte-diff still must hold there, which is the point).
pub const PAR_WORKERS: usize = 4;

/// Giant-family parameters, matching [`Dataset::Giant`]'s build arm so
/// `repro giant` measures exactly the dataset the catalog exposes.
const EXTRA_MEAN: u32 = 7;
const SEED: u64 = 0x61A7;

/// One leg's deterministic measurements.
#[derive(Clone, Debug, PartialEq)]
pub struct Row {
    /// `"naive"` or `"tuned"`.
    pub leg: &'static str,
    /// Vertices of the scaled giant graph.
    pub vertices: usize,
    /// Directed edges.
    pub edges: u64,
    /// Scheduler queue capacity in slots (the leg's sizing policy).
    pub queue_capacity: u32,
    /// Vertices reached by the validated BFS (always all of them — the
    /// tree skeleton spans the graph).
    pub reached: usize,
    /// Simulated rounds.
    pub rounds: u64,
    /// Work cycles across all wavefronts.
    pub work_cycles: u64,
    /// Scheduler atomics.
    pub scheduler_atomics: u64,
    /// Simulated milliseconds.
    pub sim_ms: f64,
    /// Zero CAS attempts and zero queue-empty retries.
    pub retry_free: bool,
}

/// Restores lazy zeroing even if a leg panics.
struct EagerGuard;

impl EagerGuard {
    fn engage() -> Self {
        simt::set_eager_zeroing(true);
        EagerGuard
    }
}

impl Drop for EagerGuard {
    fn drop(&mut self) {
        simt::set_eager_zeroing(false);
    }
}

/// One full device setup: the exact allocation sequence of
/// `run_workload_once` (graph upload, value array, on-queue bits,
/// outstanding counter, sentinel-painted queue, seed), then teardown so
/// the next epoch recycles the arena.
fn device_setup(gpu: &GpuConfig, graph: &Csr, capacity: u32) {
    let n = graph.num_vertices();
    let mut engine = Engine::new(gpu.clone());
    let mem = engine.memory_mut();
    mem.alloc_init("nodes", graph.row_offsets());
    mem.alloc_init("edges", graph.adjacency());
    let values = mem.alloc_filled("values", n, UNVISITED);
    mem.write_u32(values, 0, 0);
    let inqueue = mem.alloc("inqueue", n);
    mem.write_u32(inqueue, 0, 1);
    let pending = mem.alloc("pending", 1);
    mem.write_u32(pending, 0, 1);
    let layout = QueueLayout::setup(mem, "workqueue", capacity);
    layout.host_seed(mem, &[0]);
}

/// Runs one leg: time the build, warm the arena pool, time
/// [`SETUP_EPOCHS`] device setups, then run the (untimed) validated BFS.
fn leg(
    gpu: &GpuConfig,
    wgs: usize,
    factor: f64,
    build: impl FnOnce() -> Csr,
) -> (Csr, Run, f64, f64) {
    let build_start = Instant::now();
    let graph = build();
    let build_seconds = build_start.elapsed().as_secs_f64();

    let capacity = queue_capacity(graph.num_vertices(), factor);
    // Untimed warm-up so both legs' timed epochs start from a recycled
    // arena of the right size (the first leg would otherwise pay the
    // fresh-arena growth the second leg skips).
    device_setup(gpu, &graph, capacity);
    let setup_start = Instant::now();
    for _ in 0..SETUP_EPOCHS {
        device_setup(gpu, &graph, capacity);
    }
    let setup_seconds = setup_start.elapsed().as_secs_f64();

    let mut config = PtConfig::new(Variant::RfAn, wgs);
    config.capacity_factor = factor;
    let run = run_bfs(gpu, &graph, 0, &config).unwrap_or_else(|e| panic!("giant bfs: {e}"));
    validate_levels(&graph, 0, &run.values).unwrap_or_else(|(v, want, got)| {
        panic!("giant: wrong level at vertex {v}: want {want} got {got}")
    });
    record_rounds(run.metrics.rounds);
    record_profile(&run.profile);
    (graph, run, build_seconds, setup_seconds)
}

/// Measures both legs at `scale` (fraction of the 16.7M-vertex /
/// 134M-edge full giant graph) and records the wall-clock outcome for
/// `BENCH_repro.json`.
///
/// # Panics
/// Panics if the legs' graphs, values, metrics, or simulated seconds
/// diverge, or if BFS fails validation — the legs must differ in
/// host-side mechanics only.
pub fn measure(scale: Scale) -> Vec<Row> {
    let spec = Dataset::Giant.spec();
    let n = ((spec.vertices as f64 * scale.fraction()) as usize).max(16);
    let gpu = GpuConfig::spectre();
    let wgs = gpu.num_cus * gpu.wgs_per_cu;

    let (naive_graph, naive_run, naive_build, naive_setup) = {
        let _eager = EagerGuard::engage();
        leg(&gpu, wgs, NAIVE_FACTOR, || {
            let mut b = CsrBuilder::new(n);
            for_each_giant_edge(n, EXTRA_MEAN, SEED, &mut |s, d| b.add_edge(s, d));
            b.build()
        })
    };
    let (tuned_graph, tuned_run, tuned_build, tuned_setup) = leg(&gpu, wgs, TUNED_FACTOR, || {
        giant_with_chunk(n, EXTRA_MEAN, SEED, DEFAULT_CHUNK_EDGES)
    });

    assert_eq!(
        naive_graph, tuned_graph,
        "streamed construction must be byte-identical to the in-memory builder"
    );
    assert_eq!(naive_run.values, tuned_run.values, "legs diverged: values");
    assert_eq!(
        naive_run.metrics, tuned_run.metrics,
        "legs diverged: metrics"
    );
    assert_eq!(
        naive_run.seconds, tuned_run.seconds,
        "legs diverged: simulated time"
    );

    // Engine-par leg: the same validated BFS, *timed*, serial round loop
    // vs PAR_WORKERS plan workers (DESIGN.md §12). The two runs must be
    // byte-identical in every simulated quantity — wall clock is the
    // only thing allowed to move.
    let mut par_config = PtConfig::new(Variant::RfAn, wgs);
    par_config.capacity_factor = TUNED_FACTOR;
    let par_serial_start = Instant::now();
    let par_serial_run =
        run_bfs(&gpu, &tuned_graph, 0, &par_config).unwrap_or_else(|e| panic!("giant bfs: {e}"));
    let par_serial_seconds = par_serial_start.elapsed().as_secs_f64();
    par_config.engine_workers = PAR_WORKERS;
    let par_start = Instant::now();
    let par_run =
        run_bfs(&gpu, &tuned_graph, 0, &par_config).unwrap_or_else(|e| panic!("giant bfs: {e}"));
    let par_parallel_seconds = par_start.elapsed().as_secs_f64();
    assert_eq!(
        par_serial_run.values, par_run.values,
        "engine-par leg diverged: values"
    );
    assert_eq!(
        par_serial_run.metrics, par_run.metrics,
        "engine-par leg diverged: metrics"
    );
    assert_eq!(
        par_serial_run.seconds.to_bits(),
        par_run.seconds.to_bits(),
        "engine-par leg diverged: simulated time"
    );
    assert_eq!(
        par_serial_run.per_cu_cycles, par_run.per_cu_cycles,
        "engine-par leg diverged: per-CU cycles"
    );
    record_rounds(par_serial_run.metrics.rounds + par_run.metrics.rounds);
    record_profile(&par_run.profile);

    let edges = naive_graph.num_edges() as u64;
    let bench = GiantBench {
        edges,
        naive_build_seconds: naive_build,
        naive_setup_seconds: naive_setup,
        tuned_build_seconds: tuned_build,
        tuned_setup_seconds: tuned_setup,
        par_serial_seconds,
        par_parallel_seconds,
        par_workers: PAR_WORKERS as u64,
        host_cores: super::common::host_cores() as u64,
    };
    eprintln!(
        "  giant: |V|={} |E|={edges}  naive {:.2}s build + {:.2}s setup ({:.1}M edges/s), \
         tuned {:.2}s build + {:.2}s setup ({:.1}M edges/s)  -> {:.2}x",
        naive_graph.num_vertices(),
        bench.naive_build_seconds,
        bench.naive_setup_seconds,
        bench.naive_edges_per_second() / 1e6,
        bench.tuned_build_seconds,
        bench.tuned_setup_seconds,
        bench.tuned_edges_per_second() / 1e6,
        bench.speedup(),
    );
    eprintln!(
        "  giant engine-par: bfs {:.2}s serial vs {:.2}s at {} plan workers \
         ({:.2}x on {} host cores, byte-identical)",
        bench.par_serial_seconds,
        bench.par_parallel_seconds,
        bench.par_workers,
        bench.par_speedup(),
        bench.host_cores,
    );
    record_giant(bench);

    [
        ("naive", &naive_run, NAIVE_FACTOR),
        ("tuned", &tuned_run, TUNED_FACTOR),
    ]
    .into_iter()
    .map(|(name, run, factor)| Row {
        leg: name,
        vertices: naive_graph.num_vertices(),
        edges,
        queue_capacity: queue_capacity(naive_graph.num_vertices(), factor),
        reached: run.reached,
        rounds: run.metrics.rounds,
        work_cycles: run.metrics.work_cycles,
        scheduler_atomics: run.metrics.scheduler_atomics,
        sim_ms: run.seconds * 1e3,
        retry_free: run.metrics.cas_attempts == 0 && run.metrics.queue_empty_retries == 0,
    })
    .collect()
}

/// Renders the giant table (deterministic columns only).
pub fn table(rows: &[Row]) -> Table {
    let mut t = Table::new(
        "Giant-graph scale: streamed vs in-memory construction pipeline (RF/AN BFS on \
         Spectre; legs are bit-identical in every simulated quantity, wall-clock lives \
         in BENCH_repro.json)",
        &[
            "Leg",
            "|V|",
            "|E|",
            "Queue cap",
            "Reached",
            "Rounds",
            "Work cycles",
            "Sched atomics",
            "Sim ms",
            "Retry-free",
        ],
    );
    for r in rows {
        t.row(vec![
            r.leg.to_owned(),
            r.vertices.to_string(),
            r.edges.to_string(),
            r.queue_capacity.to_string(),
            r.reached.to_string(),
            r.rounds.to_string(),
            r.work_cycles.to_string(),
            r.scheduler_atomics.to_string(),
            format!("{:.4}", r.sim_ms),
            if r.retry_free { "yes" } else { "NO" }.to_owned(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn legs_agree_and_cover_the_graph() {
        let rows = measure(Scale::new(0.002));
        assert_eq!(rows.len(), 2);
        let (naive, tuned) = (&rows[0], &rows[1]);
        assert_eq!(naive.leg, "naive");
        assert_eq!(tuned.leg, "tuned");
        // Everything simulated is identical; only the sizing policy
        // differs.
        assert_eq!(naive.rounds, tuned.rounds);
        assert_eq!(naive.sim_ms, tuned.sim_ms);
        assert!(naive.queue_capacity > tuned.queue_capacity);
        // The tree skeleton spans the graph and RF/AN never retries.
        assert_eq!(naive.reached, naive.vertices);
        assert!(naive.retry_free && tuned.retry_free);
        // The experiment recorded its wall-clock outcome.
        let bench = super::super::common::giant_bench().expect("giant bench recorded");
        assert_eq!(bench.edges, naive.edges);
        assert!(bench.speedup() > 0.0);
        // The engine-par leg ran (its byte-diff asserts live in
        // `measure`) and recorded its context.
        assert_eq!(bench.par_workers, PAR_WORKERS as u64);
        assert!(bench.host_cores >= 1);
        assert!(bench.par_serial_seconds > 0.0 && bench.par_parallel_seconds > 0.0);
        assert!(bench.par_speedup() > 0.0);
    }
}
