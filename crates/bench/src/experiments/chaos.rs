//! Chaos experiment: recovery metrics under a seeded fault matrix.
//!
//! Not a figure from the paper — the paper's §4.4 abort story ends at
//! "the user can retry the kernel with a larger queue". This experiment
//! quantifies the generalized recovery path: every MAIN_SIX dataset shape
//! gets a deterministic fault plan (wave-kills × CU stalls × memory
//! poisons, drawn from a fixed seed) injected into a checkpointed
//! recoverable run, which must converge to levels byte-identical to the
//! fault-free golden. The table reports what recovery cost: aborts
//! survived, rounds lost and replayed, and the simulated-time overhead
//! versus the clean run.
//!
//! Like every other experiment, the table is byte-identical at any
//! `--jobs` count — the fault plans are seeded and the simulator is
//! deterministic, so the CI chaos job byte-diffs serial vs parallel runs.

use super::common::{bfs_run, pt_config, record_recovery, DatasetCache};
use crate::report::Table;
use crate::{Scale, Sched};
use gpu_queue::Variant;
use pt_bfs::{run_bfs_recoverable, RecoveryPolicy};
use ptq_graph::{validate_levels, Dataset};
use simt::{FaultPlan, FaultSpec, GpuConfig};

/// Seed for the fault matrix (xor-ed with the dataset index).
pub const SEED: u64 = 0xC4A05;

/// Per-dataset fractions *relative to the run's `--scale`*: chaos runs
/// each graph several times (golden + epochs + retries), so the slices
/// are chosen to land every shape near 1–2.5k vertices at the default
/// scale — big enough for multi-epoch traversals, small enough to keep
/// the whole matrix in seconds.
const CHAOS_REL: [(Dataset, f64); 6] = [
    (Dataset::Synthetic, 0.004),
    (Dataset::GplusCombined, 0.1),
    (Dataset::SocLiveJournal1, 0.006),
    (Dataset::RoadNY, 0.1),
    (Dataset::RoadLKS, 0.01),
    (Dataset::RoadUSA, 0.002),
];

/// One chaos measurement.
#[derive(Clone, Debug, PartialEq)]
pub struct Row {
    /// Dataset name.
    pub dataset: &'static str,
    /// Faults the seeded plan scheduled.
    pub faults: usize,
    /// Aborts the run survived (wave-kills and poisons that fired).
    pub aborts: usize,
    /// Fenced epochs that committed.
    pub epochs: u32,
    /// Rounds thrown away by aborted launches.
    pub rounds_lost: u64,
    /// Rounds re-executed by the retries of aborted epochs.
    pub rounds_replayed: u64,
    /// Fault-free simulated milliseconds (golden run).
    pub clean_ms: f64,
    /// Simulated milliseconds under the fault plan (incl. backoff).
    pub chaos_ms: f64,
}

impl Row {
    /// Simulated-time cost of surviving the faults.
    pub fn overhead(&self) -> f64 {
        self.chaos_ms / self.clean_ms
    }
}

fn plan_for(gpu: &GpuConfig, workgroups: usize, num_vertices: usize, seed: u64) -> FaultPlan {
    FaultPlan::seeded(
        seed,
        &FaultSpec {
            wave_kills: 2,
            cu_stalls: 2,
            mem_poisons: 2,
            max_round: 8, // early rounds: every launch reaches them
            waves: workgroups * gpu.waves_per_wg,
            cus: gpu.num_cus,
            max_stall_rounds: 4,
            max_stall_cycles: 200,
            poison_buffer: "costs".into(),
            poison_words: num_vertices,
        },
    )
}

/// Measures the chaos matrix on Spectre at its headline occupancy.
///
/// # Panics
/// Panics if a recovered run diverges from its fault-free golden — the
/// whole point of the experiment is that it never does.
pub fn measure(scale: Scale, sched: &Sched) -> Vec<Row> {
    let gpu = GpuConfig::spectre();
    let wgs = gpu.num_cus * gpu.wgs_per_cu;
    let grid: Vec<(usize, Dataset, f64)> = CHAOS_REL
        .iter()
        .enumerate()
        .map(|(i, &(d, rel))| (i, d, rel))
        .collect();
    sched.par_map(&grid, |_, &(i, dataset, rel)| {
        let slice = Scale::new((scale.fraction() * rel).min(1.0));
        let graph = DatasetCache::global().get(dataset, slice);
        let source = dataset.source();
        let golden = bfs_run(&gpu, &graph, Variant::RfAn, wgs);

        let config = pt_config(Variant::RfAn, wgs);
        let plan = plan_for(&gpu, wgs, graph.num_vertices(), SEED ^ ((i as u64) << 8));
        let policy = RecoveryPolicy {
            checkpoint_levels: 4,
            max_attempts: 16,
            ..RecoveryPolicy::default()
        };
        let run = run_bfs_recoverable(&gpu, &graph, source, &config, &policy, &plan)
            .unwrap_or_else(|e| panic!("chaos on {dataset:?}: {e}"));
        validate_levels(&graph, source, &run.values)
            .unwrap_or_else(|_| panic!("chaos on {dataset:?}: wrong levels"));
        assert_eq!(
            run.values, golden.values,
            "chaos on {dataset:?}: recovered levels diverge from golden"
        );
        record_recovery(
            plan.len() as u64,
            run.recovery.aborts() as u64,
            run.recovery.rounds_replayed,
            run.metrics.rounds,
        );
        Row {
            dataset: dataset.spec().name,
            faults: plan.len(),
            aborts: run.recovery.aborts(),
            epochs: run.recovery.epochs,
            rounds_lost: run.recovery.rounds_lost,
            rounds_replayed: run.recovery.rounds_replayed,
            clean_ms: golden.seconds * 1e3,
            chaos_ms: run.seconds * 1e3,
        }
    })
}

/// Renders the chaos table.
pub fn table(rows: &[Row]) -> Table {
    let mut t = Table::new(
        "Chaos: recovery under a seeded fault matrix (RF/AN, Spectre)",
        &[
            "Dataset", "Faults", "Aborts", "Epochs", "Lost", "Replayed", "Clean ms", "Chaos ms",
            "Overhead",
        ],
    );
    for r in rows {
        t.row(vec![
            r.dataset.to_owned(),
            r.faults.to_string(),
            r.aborts.to_string(),
            r.epochs.to_string(),
            r.rounds_lost.to_string(),
            r.rounds_replayed.to_string(),
            format!("{:.4}", r.clean_ms),
            format!("{:.4}", r.chaos_ms),
            format!("{:.2}x", r.overhead()),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_matrix_covers_all_six_and_is_job_invariant() {
        let serial = measure(Scale::new(0.02), &Sched::new(1));
        let parallel = measure(Scale::new(0.02), &Sched::new(4));
        assert_eq!(serial.len(), 6);
        // Same seed, same scale: bit-identical rows at any job count —
        // the property the CI chaos job byte-diffs.
        assert_eq!(serial, parallel);
        for r in &serial {
            assert_eq!(r.faults, 6, "{}: fault matrix incomplete", r.dataset);
            assert!(r.epochs >= 1);
        }
        // The matrix must actually interrupt something somewhere.
        assert!(
            serial.iter().any(|r| r.aborts > 0),
            "no dataset aborted: fault plans never fired"
        );
    }
}
