//! Property-based tests of the simulator itself: determinism, metric
//! consistency, and cost-model monotonicity under arbitrary kernels.

use proptest::prelude::*;
use simt::{Buffer, Engine, GpuConfig, Launch, Metrics, WaveCtx, WaveKernel, WaveStatus};

/// A kernel driven by a small script: per work cycle it performs a mix of
/// reads, writes, AFAs, and CASes derived from its parameters.
#[derive(Clone)]
struct ScriptKernel {
    buf: Buffer,
    cycles: u32,
    reads: u8,
    afas: u8,
    cas: u8,
    stride: usize,
    wave: usize,
}

impl WaveKernel for ScriptKernel {
    fn work_cycle(&mut self, ctx: &mut WaveCtx<'_>) -> WaveStatus {
        if self.cycles == 0 {
            return WaveStatus::Done;
        }
        let len = 512;
        for i in 0..self.reads {
            let idx = (self.wave * 31 + i as usize * self.stride) % len;
            ctx.global_read_lane(self.buf, idx);
        }
        for _ in 0..self.afas {
            ctx.atomic_add(self.buf, 0, 1);
        }
        for i in 0..self.cas {
            // Half target the hot word, half a private word.
            let idx = if i % 2 == 0 { 1 } else { 2 + self.wave % 100 };
            ctx.atomic_cas(self.buf, idx, 0, 0);
        }
        ctx.charge_alu(1);
        self.cycles -= 1;
        if self.cycles == 0 {
            WaveStatus::Done
        } else {
            WaveStatus::Active
        }
    }
}

fn run_script(
    wgs: usize,
    cycles: u32,
    reads: u8,
    afas: u8,
    cas: u8,
    stride: usize,
) -> (Metrics, Vec<u64>) {
    let mut e = Engine::new(GpuConfig::test_tiny());
    e.memory_mut().alloc("buf", 512);
    let buf = e.memory().buffer("buf");
    let report = e
        .run(Launch::workgroups(wgs), |info| ScriptKernel {
            buf,
            cycles,
            reads,
            afas,
            cas,
            stride: stride.max(1),
            wave: info.wave_id,
        })
        .unwrap();
    (report.metrics, report.per_cu_cycles)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Identical inputs produce identical metrics and per-CU cycles.
    #[test]
    fn simulation_is_deterministic(
        wgs in 1usize..6,
        cycles in 1u32..20,
        reads in 0u8..8,
        afas in 0u8..4,
        cas in 0u8..4,
        stride in 1usize..40,
    ) {
        let a = run_script(wgs, cycles, reads, afas, cas, stride);
        let b = run_script(wgs, cycles, reads, afas, cas, stride);
        prop_assert_eq!(a.0, b.0);
        prop_assert_eq!(a.1, b.1);
    }

    /// Metric bookkeeping is exact: op counts follow directly from the
    /// script parameters.
    #[test]
    fn metric_counts_are_exact(
        wgs in 1usize..6,
        cycles in 1u32..16,
        reads in 0u8..8,
        afas in 0u8..4,
        cas in 0u8..4,
    ) {
        let (m, _) = run_script(wgs, cycles, reads, afas, cas, 3);
        let waves = wgs as u64;
        let per_wave = u64::from(cycles);
        prop_assert_eq!(m.work_cycles, waves * per_wave);
        prop_assert_eq!(m.rounds, u64::from(cycles));
        prop_assert_eq!(m.cas_attempts, waves * per_wave * u64::from(cas));
        prop_assert_eq!(
            m.global_atomics,
            waves * per_wave * (u64::from(afas) + u64::from(cas))
        );
        prop_assert_eq!(m.global_mem_ops, waves * per_wave * u64::from(reads));
    }

    /// Adding work never makes the makespan shorter (cost monotonicity).
    #[test]
    fn more_work_never_cheaper(
        wgs in 1usize..5,
        cycles in 1u32..10,
        reads in 0u8..6,
    ) {
        let (m1, _) = run_script(wgs, cycles, reads, 1, 0, 5);
        let (m2, _) = run_script(wgs, cycles + 1, reads, 1, 0, 5);
        prop_assert!(m2.makespan_cycles >= m1.makespan_cycles);
        let (m3, _) = run_script(wgs, cycles, reads + 1, 1, 0, 5);
        prop_assert!(m3.makespan_cycles >= m1.makespan_cycles);
    }

    /// CAS against a zeroed word with expected 0 always "succeeds"
    /// (value unchanged means observed == expected), so failure counts
    /// stay zero regardless of interleaving.
    #[test]
    fn cas_failure_accounting_is_sound(
        wgs in 1usize..6,
        cycles in 1u32..10,
        cas in 1u8..4,
    ) {
        let (m, _) = run_script(wgs, cycles, 0, 0, cas, 3);
        prop_assert_eq!(m.cas_failures, 0);
        prop_assert_eq!(m.cas_attempts, wgs as u64 * u64::from(cycles) * u64::from(cas));
    }

    /// The makespan always covers the launch overhead plus at least the
    /// busiest CU's accumulated time.
    #[test]
    fn makespan_dominates_components(
        wgs in 1usize..6,
        cycles in 1u32..12,
        reads in 0u8..6,
        afas in 0u8..3,
    ) {
        let mut e = Engine::new(GpuConfig::test_tiny());
        e.memory_mut().alloc("buf", 512);
        let buf = e.memory().buffer("buf");
        let report = e
            .run(Launch::workgroups(wgs), |info| ScriptKernel {
                buf,
                cycles,
                reads,
                afas,
                cas: 0,
                stride: 7,
                wave: info.wave_id,
            })
            .unwrap();
        let max_cu = report.per_cu_cycles.iter().copied().max().unwrap();
        prop_assert!(report.metrics.makespan_cycles >= max_cu);
        prop_assert!(report.seconds > 0.0 || report.metrics.makespan_cycles == 0);
    }
}

/// Memory state after a run reflects exactly the ops performed.
#[test]
fn memory_effects_are_exact() {
    let mut e = Engine::new(GpuConfig::test_tiny());
    e.memory_mut().alloc("buf", 512);
    let buf = e.memory().buffer("buf");
    e.run(Launch::workgroups(3), |info| ScriptKernel {
        buf,
        cycles: 5,
        reads: 2,
        afas: 2,
        cas: 0,
        stride: 3,
        wave: info.wave_id,
    })
    .unwrap();
    // 3 waves x 5 cycles x 2 AFAs of +1 on word 0.
    assert_eq!(e.memory().read_u32(buf, 0), 30);
}
