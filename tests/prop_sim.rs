//! Randomized property tests of the simulator itself: determinism, metric
//! consistency, and cost-model monotonicity under arbitrary kernels.
//!
//! Each property runs as a seeded loop over a `SplitMix64` stream —
//! deterministic across runs and platforms.

use ptq::graph::rng::SplitMix64;
use simt::{Buffer, Engine, GpuConfig, Launch, Metrics, WaveCtx, WaveKernel, WaveStatus};

/// A kernel driven by a small script: per work cycle it performs a mix of
/// reads, writes, AFAs, and CASes derived from its parameters.
#[derive(Clone)]
struct ScriptKernel {
    buf: Buffer,
    cycles: u32,
    reads: u8,
    afas: u8,
    cas: u8,
    stride: usize,
    wave: usize,
}

impl WaveKernel for ScriptKernel {
    fn work_cycle(&mut self, ctx: &mut WaveCtx<'_>) -> WaveStatus {
        if self.cycles == 0 {
            return WaveStatus::Done;
        }
        let len = 512;
        for i in 0..self.reads {
            let idx = (self.wave * 31 + i as usize * self.stride) % len;
            ctx.global_read_lane(self.buf, idx);
        }
        for _ in 0..self.afas {
            ctx.atomic_add(self.buf, 0, 1);
        }
        for i in 0..self.cas {
            // Half target the hot word, half a private word.
            let idx = if i % 2 == 0 { 1 } else { 2 + self.wave % 100 };
            ctx.atomic_cas(self.buf, idx, 0, 0);
        }
        ctx.charge_alu(1);
        self.cycles -= 1;
        if self.cycles == 0 {
            WaveStatus::Done
        } else {
            WaveStatus::Active
        }
    }
}

fn run_script(
    wgs: usize,
    cycles: u32,
    reads: u8,
    afas: u8,
    cas: u8,
    stride: usize,
) -> (Metrics, Vec<u64>) {
    let mut e = Engine::new(GpuConfig::test_tiny());
    e.memory_mut().alloc("buf", 512);
    let buf = e.memory().buffer("buf");
    let report = e
        .run(Launch::workgroups(wgs), |info| ScriptKernel {
            buf,
            cycles,
            reads,
            afas,
            cas,
            stride: stride.max(1),
            wave: info.wave_id,
        })
        .unwrap();
    (report.metrics, report.per_cu_cycles)
}

/// Samples one script-parameter tuple from the stream.
fn sample(rng: &mut SplitMix64) -> (usize, u32, u8, u8, u8, usize) {
    (
        rng.range_u64(1, 6) as usize,
        rng.range_u64(1, 20) as u32,
        rng.range_u64(0, 8) as u8,
        rng.range_u64(0, 4) as u8,
        rng.range_u64(0, 4) as u8,
        rng.range_u64(1, 40) as usize,
    )
}

/// Identical inputs produce identical metrics and per-CU cycles.
#[test]
fn simulation_is_deterministic() {
    let mut rng = SplitMix64::seed_from_u64(0xD3);
    for case in 0..48 {
        let (wgs, cycles, reads, afas, cas, stride) = sample(&mut rng);
        let a = run_script(wgs, cycles, reads, afas, cas, stride);
        let b = run_script(wgs, cycles, reads, afas, cas, stride);
        assert_eq!(a.0, b.0, "case {case}");
        assert_eq!(a.1, b.1, "case {case}");
    }
}

/// Metric bookkeeping is exact: op counts follow directly from the script
/// parameters.
#[test]
fn metric_counts_are_exact() {
    let mut rng = SplitMix64::seed_from_u64(0xE4AC7);
    for case in 0..48 {
        let (wgs, cycles, reads, afas, cas, _) = sample(&mut rng);
        let cycles = cycles.min(16);
        let (m, _) = run_script(wgs, cycles, reads, afas, cas, 3);
        let waves = wgs as u64;
        let per_wave = u64::from(cycles);
        assert_eq!(m.work_cycles, waves * per_wave, "case {case}");
        assert_eq!(m.rounds, u64::from(cycles), "case {case}");
        assert_eq!(
            m.cas_attempts,
            waves * per_wave * u64::from(cas),
            "case {case}"
        );
        assert_eq!(
            m.global_atomics,
            waves * per_wave * (u64::from(afas) + u64::from(cas)),
            "case {case}"
        );
        assert_eq!(
            m.global_mem_ops,
            waves * per_wave * u64::from(reads),
            "case {case}"
        );
    }
}

/// Adding work never makes the makespan shorter (cost monotonicity).
#[test]
fn more_work_never_cheaper() {
    let mut rng = SplitMix64::seed_from_u64(0x30_0E);
    for case in 0..48 {
        let wgs = rng.range_u64(1, 5) as usize;
        let cycles = rng.range_u64(1, 10) as u32;
        let reads = rng.range_u64(0, 6) as u8;
        let (m1, _) = run_script(wgs, cycles, reads, 1, 0, 5);
        let (m2, _) = run_script(wgs, cycles + 1, reads, 1, 0, 5);
        assert!(m2.makespan_cycles >= m1.makespan_cycles, "case {case}");
        let (m3, _) = run_script(wgs, cycles, reads + 1, 1, 0, 5);
        assert!(m3.makespan_cycles >= m1.makespan_cycles, "case {case}");
    }
}

/// CAS against a zeroed word with expected 0 always "succeeds" (value
/// unchanged means observed == expected), so failure counts stay zero
/// regardless of interleaving.
#[test]
fn cas_failure_accounting_is_sound() {
    let mut rng = SplitMix64::seed_from_u64(0xCA5);
    for case in 0..48 {
        let wgs = rng.range_u64(1, 6) as usize;
        let cycles = rng.range_u64(1, 10) as u32;
        let cas = rng.range_u64(1, 4) as u8;
        let (m, _) = run_script(wgs, cycles, 0, 0, cas, 3);
        assert_eq!(m.cas_failures, 0, "case {case}");
        assert_eq!(
            m.cas_attempts,
            wgs as u64 * u64::from(cycles) * u64::from(cas),
            "case {case}"
        );
    }
}

/// The makespan always covers the launch overhead plus at least the
/// busiest CU's accumulated time.
#[test]
fn makespan_dominates_components() {
    let mut rng = SplitMix64::seed_from_u64(0xA4E5);
    for case in 0..48 {
        let wgs = rng.range_u64(1, 6) as usize;
        let cycles = rng.range_u64(1, 12) as u32;
        let reads = rng.range_u64(0, 6) as u8;
        let afas = rng.range_u64(0, 3) as u8;
        let mut e = Engine::new(GpuConfig::test_tiny());
        e.memory_mut().alloc("buf", 512);
        let buf = e.memory().buffer("buf");
        let report = e
            .run(Launch::workgroups(wgs), |info| ScriptKernel {
                buf,
                cycles,
                reads,
                afas,
                cas: 0,
                stride: 7,
                wave: info.wave_id,
            })
            .unwrap();
        let max_cu = report.per_cu_cycles.iter().copied().max().unwrap();
        assert!(report.metrics.makespan_cycles >= max_cu, "case {case}");
        assert!(
            report.seconds > 0.0 || report.metrics.makespan_cycles == 0,
            "case {case}"
        );
    }
}

/// Memory state after a run reflects exactly the ops performed.
#[test]
fn memory_effects_are_exact() {
    let mut e = Engine::new(GpuConfig::test_tiny());
    e.memory_mut().alloc("buf", 512);
    let buf = e.memory().buffer("buf");
    e.run(Launch::workgroups(3), |info| ScriptKernel {
        buf,
        cycles: 5,
        reads: 2,
        afas: 2,
        cas: 0,
        stride: 3,
        wave: info.wave_id,
    })
    .unwrap();
    // 3 waves x 5 cycles x 2 AFAs of +1 on word 0.
    assert_eq!(e.memory().read_u32(buf, 0), 30);
}
