//! Differential fuzzing: all six device schedulers (BASE, AN, RF-only,
//! RF/AN, the segmented SEG-RF/AN queue, and the distributed stealing
//! queue) are run on identical seeded workloads and must deliver
//! identical token multisets — and identical BFS levels on identical
//! graphs. Any divergence means one of the queue designs lost,
//! duplicated, or invented a token.

use ptq::bfs::workload::{ConnectedComponents, PrDelta, PtWorkload};
use ptq::bfs::{run_bfs, run_bfs_stealing, run_workload, run_workload_stealing, PtConfig};
use ptq::graph::gen::social;
use ptq::graph::gen::SocialParams;
use ptq::graph::Dataset;
use ptq::queue::device::{
    make_wave_queue, LanePhase, QueueLayout, SegmentedLayout, SegmentedWaveQueue, StealingLayout,
    StealingWaveQueue, WaveQueue,
};
use ptq::queue::Variant;
use simt::{Buffer, Engine, GpuConfig, Launch, WaveCtx, WaveKernel, WaveStatus};
use std::sync::{Arc, Mutex};

/// SplitMix64 — the crate-wide seeded PRNG idiom.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Children per fanned-out token.
const CHILDREN: u32 = 3;
/// Tokens below this fan out once; derived children (>= 1,000) never do.
const FANOUT_UNTIL: u32 = 600;

/// Producer/consumer kernel: consumes tokens, fans out children for
/// seeds, terminates on a pending-task counter — the same shape as the
/// BFS driver, generic over any [`WaveQueue`].
struct FuzzPump {
    queue: Box<dyn WaveQueue>,
    lanes: Vec<LanePhase>,
    pending: Buffer,
    consumed: Arc<Mutex<Vec<u32>>>,
    outbox: Vec<u32>,
    completed: u32,
}

impl WaveKernel for FuzzPump {
    fn work_cycle(&mut self, ctx: &mut WaveCtx<'_>) -> WaveStatus {
        for l in self.lanes.iter_mut() {
            if *l == LanePhase::Idle {
                *l = LanePhase::Hungry;
            }
        }
        self.queue.acquire(ctx, &mut self.lanes);
        for l in self.lanes.iter_mut() {
            if let LanePhase::Ready(tok) = *l {
                self.consumed.lock().unwrap().push(tok);
                if tok < FANOUT_UNTIL {
                    for c in 0..CHILDREN {
                        self.outbox.push(tok * CHILDREN + c + 1_000);
                    }
                }
                self.completed += 1;
                *l = LanePhase::Idle;
            }
        }
        if !self.outbox.is_empty() {
            let accepted = self.queue.enqueue(ctx, &self.outbox);
            if accepted > 0 {
                ctx.atomic_add(self.pending, 0, accepted as u32);
                self.outbox.drain(..accepted);
            }
        }
        if self.completed > 0 {
            ctx.atomic_sub(self.pending, 0, self.completed);
            self.completed = 0;
        }
        let pending = ctx.global_read(self.pending, 0);
        if pending == 0 && self.outbox.is_empty() {
            WaveStatus::Done
        } else {
            WaveStatus::Active
        }
    }
}

/// Delivered-token multiset (sorted) for a monolithic-queue variant.
fn pump_variant(variant: Variant, seeds: &[u32], wgs: usize, capacity: u32) -> Vec<u32> {
    let mut engine = Engine::new(GpuConfig::test_tiny());
    let layout = QueueLayout::setup(engine.memory_mut(), "q", capacity);
    let pending = engine.memory_mut().alloc("pending", 1);
    layout.host_seed(engine.memory_mut(), seeds);
    engine
        .memory_mut()
        .write_u32(pending, 0, seeds.len() as u32);
    let consumed = Arc::new(Mutex::new(Vec::new()));
    let wave_size = engine.config().wave_size;
    engine
        .run(
            Launch::workgroups(wgs)
                .with_max_rounds(2_000_000)
                .with_audit(),
            |_info| FuzzPump {
                queue: make_wave_queue(variant, layout),
                lanes: vec![LanePhase::Idle; wave_size],
                pending,
                consumed: Arc::clone(&consumed),
                outbox: Vec::new(),
                completed: 0,
            },
        )
        .unwrap_or_else(|e| panic!("{variant:?} pump failed: {e}"));
    let mut out = consumed.lock().unwrap().clone();
    out.sort_unstable();
    out
}

/// Delivered-token multiset (sorted) for the distributed stealing queue.
fn pump_stealing(seeds: &[u32], wgs: usize, capacity: u32) -> Vec<u32> {
    let gpu = GpuConfig::test_tiny();
    let mut engine = Engine::new(gpu.clone());
    let layout = StealingLayout::setup(engine.memory_mut(), "dq", gpu.num_cus, capacity);
    let pending = engine.memory_mut().alloc("pending", 1);
    layout.host_seed(engine.memory_mut(), seeds);
    engine
        .memory_mut()
        .write_u32(pending, 0, seeds.len() as u32);
    let consumed = Arc::new(Mutex::new(Vec::new()));
    let wave_size = engine.config().wave_size;
    engine
        .run(
            Launch::workgroups(wgs)
                .with_max_rounds(2_000_000)
                .with_audit(),
            |info| FuzzPump {
                queue: Box::new(StealingWaveQueue::new(&layout, info.cu)),
                lanes: vec![LanePhase::Idle; wave_size],
                pending,
                consumed: Arc::clone(&consumed),
                outbox: Vec::new(),
                completed: 0,
            },
        )
        .unwrap_or_else(|e| panic!("stealing pump failed: {e}"));
    let mut out = consumed.lock().unwrap().clone();
    out.sort_unstable();
    out
}

/// Delivered-token multiset (sorted) for the segmented SEG-RF/AN queue.
/// `FuzzPump` already re-offers unaccepted tokens next cycle, so the
/// segmented backpressure contract (partial accepts instead of aborts)
/// needs no kernel change — the same pump drives both queue families.
fn pump_segmented(seeds: &[u32], wgs: usize, capacity: u32) -> Vec<u32> {
    let mut engine = Engine::new(GpuConfig::test_tiny());
    let layout = SegmentedLayout::for_capacity(engine.memory_mut(), "sq", capacity);
    let pending = engine.memory_mut().alloc("pending", 1);
    layout.host_seed(engine.memory_mut(), seeds);
    engine
        .memory_mut()
        .write_u32(pending, 0, seeds.len() as u32);
    let consumed = Arc::new(Mutex::new(Vec::new()));
    let wave_size = engine.config().wave_size;
    engine
        .run(
            Launch::workgroups(wgs)
                .with_max_rounds(2_000_000)
                .with_audit(),
            |_info| FuzzPump {
                queue: Box::new(SegmentedWaveQueue::new(layout)),
                lanes: vec![LanePhase::Idle; wave_size],
                pending,
                consumed: Arc::clone(&consumed),
                outbox: Vec::new(),
                completed: 0,
            },
        )
        .unwrap_or_else(|e| panic!("segmented pump failed: {e}"));
    let mut out = consumed.lock().unwrap().clone();
    out.sort_unstable();
    out
}

/// Seeded workload: `count` tokens below `FANOUT_UNTIL * 2` (so roughly
/// half fan out), plus the exact multiset every scheduler must deliver.
fn workload(seed: u64, count: usize) -> (Vec<u32>, Vec<u32>) {
    let mut s = seed;
    let seeds: Vec<u32> = (0..count)
        .map(|_| (splitmix64(&mut s) % u64::from(FANOUT_UNTIL * 2)) as u32)
        .collect();
    let mut expect = seeds.clone();
    for &t in &seeds {
        if t < FANOUT_UNTIL {
            for c in 0..CHILDREN {
                expect.push(t * CHILDREN + c + 1_000);
            }
        }
    }
    expect.sort_unstable();
    (seeds, expect)
}

#[test]
fn all_six_schedulers_deliver_identical_multisets() {
    for (round, &seed) in [0xFEED_0001u64, 0xFEED_0002, 0xFEED_0003]
        .iter()
        .enumerate()
    {
        let count = 24 + round * 40;
        let (seeds, expect) = workload(seed, count);
        let capacity = (expect.len() as u32 + 64).next_power_of_two();
        // Audited runs (with_audit in the pumps): every wavefront queue
        // op validates its variant's atomic budget while we fuzz.
        for variant in Variant::MATRIX {
            let got = pump_variant(variant, &seeds, 4, capacity);
            assert_eq!(
                got, expect,
                "{variant:?} diverged on seed {seed:#x} ({count} seeds)"
            );
        }
        let got = pump_stealing(&seeds, 4, capacity);
        assert_eq!(got, expect, "stealing diverged on seed {seed:#x}");
        let got = pump_segmented(&seeds, 4, capacity);
        assert_eq!(got, expect, "segmented diverged on seed {seed:#x}");
    }
}

#[test]
fn all_six_schedulers_agree_on_bfs_levels() {
    // One seeded scale-free graph, six schedulers: identical levels.
    let mut rng = 0xB0B0_CAFEu64;
    let graph = social(SocialParams {
        vertices: 700,
        avg_degree: 7.0,
        alpha: 1.9,
        max_degree: 90,
        seed: splitmix64(&mut rng) % 1_000,
    });
    let gpu = GpuConfig::test_tiny();
    let reference = run_bfs(&gpu, &graph, 0, &PtConfig::new(Variant::Base, 4))
        .unwrap()
        .values;
    for variant in [
        Variant::An,
        Variant::RfOnly,
        Variant::RfAn,
        Variant::SegRfAn,
    ] {
        let run = run_bfs(&gpu, &graph, 0, &PtConfig::new(variant, 4))
            .unwrap_or_else(|e| panic!("{variant:?}: {e}"));
        assert_eq!(run.values, reference, "{variant:?} BFS levels diverged");
    }
    let stealing = run_bfs_stealing(&gpu, &graph, 0, 4).unwrap();
    assert_eq!(stealing.values, reference, "stealing BFS levels diverged");
}

/// The six dataset shapes at fuzz scale (roughly 1–2k vertices each).
const FUZZ_SCALE: [(Dataset, f64); 6] = [
    (Dataset::Synthetic, 0.0002),
    (Dataset::GplusCombined, 0.005),
    (Dataset::SocLiveJournal1, 0.0003),
    (Dataset::RoadNY, 0.005),
    (Dataset::RoadLKS, 0.0005),
    (Dataset::RoadUSA, 0.0001),
];

/// Runs `workload` under all six device schedulers (the four
/// monolithic-queue variants, the segmented SEG-RF/AN queue, and the
/// distributed stealing queue) on one graph and checks every run's
/// value array against the sequential oracle — confluence means they
/// must all land on the identical fixed point. Retry-free variants
/// additionally audit zero CAS traffic.
fn all_six_agree_with_oracle<W: PtWorkload>(graph: &ptq::graph::Csr, workload: &W, tag: &str) {
    let gpu = GpuConfig::test_tiny();
    let oracle = workload.reference(graph);
    let variants = Variant::MATRIX.iter().chain([&Variant::SegRfAn]);
    for &variant in variants {
        let config = PtConfig::for_workload(workload, variant, 4);
        let run = run_workload(&gpu, graph, workload, &config)
            .unwrap_or_else(|e| panic!("{tag}/{variant:?}: {e}"));
        assert_eq!(
            run.values, oracle,
            "{tag}/{variant:?}: values diverged from the sequential oracle"
        );
        if variant.is_retry_free() {
            assert_eq!(run.metrics.cas_attempts, 0, "{tag}/{variant:?} issued CAS");
            assert_eq!(
                run.metrics.queue_empty_retries, 0,
                "{tag}/{variant:?} spun on empty"
            );
        }
    }
    let run = run_workload_stealing(&gpu, graph, workload, 4)
        .unwrap_or_else(|e| panic!("{tag}/stealing: {e}"));
    assert_eq!(
        run.values, oracle,
        "{tag}/stealing: values diverged from the sequential oracle"
    );
    assert_eq!(run.metrics.cas_attempts, 0, "{tag}/stealing issued CAS");
}

#[test]
fn connected_components_agree_across_all_six_schedulers() {
    for (dataset, fraction) in FUZZ_SCALE {
        let graph = dataset.build(fraction);
        all_six_agree_with_oracle(&graph, &ConnectedComponents, &format!("cc/{dataset:?}"));
    }
}

#[test]
fn prdelta_agrees_across_all_six_schedulers() {
    for (dataset, fraction) in FUZZ_SCALE {
        let graph = dataset.build(fraction);
        all_six_agree_with_oracle(
            &graph,
            &PrDelta::new(dataset.source()),
            &format!("pr-delta/{dataset:?}"),
        );
    }
}
