//! Simulator-level integration: cost-model invariants that must hold for
//! any kernel, exercised through the public API with custom kernels.

use simt::{Buffer, Engine, GpuConfig, Launch, SimError, WaveCtx, WaveKernel, WaveStatus};

/// A kernel that performs a fixed amount of mixed traffic then exits.
struct TrafficKernel {
    buf: Buffer,
    cycles_left: u32,
    scattered: bool,
}

impl WaveKernel for TrafficKernel {
    fn work_cycle(&mut self, ctx: &mut WaveCtx<'_>) -> WaveStatus {
        if self.cycles_left == 0 {
            return WaveStatus::Done;
        }
        let id = ctx.info().wave_id;
        let len = ctx.buffer("data").len();
        for lane in 0..ctx.wave_size() {
            let idx = if self.scattered {
                // Every lane touches its own cache line.
                ((id * 64 + lane) * 16 + (self.cycles_left as usize * 1024)) % len
            } else {
                // All lanes inside one line.
                (id * 4) % 16
            };
            ctx.global_read_lane(self.buf, idx);
        }
        ctx.atomic_add(self.buf, 0, 1);
        self.cycles_left -= 1;
        if self.cycles_left == 0 {
            WaveStatus::Done
        } else {
            WaveStatus::Active
        }
    }
}

fn engine() -> Engine {
    let mut e = Engine::new(GpuConfig::fiji());
    e.memory_mut().alloc("data", 4096);
    e
}

#[test]
fn scattered_traffic_costs_more_than_coalesced() {
    // Bandwidth is a device-wide pool; use the bandwidth-starved APU
    // preset at full occupancy so line traffic is the binding resource.
    let run = |scattered: bool| {
        let mut e = Engine::new(GpuConfig::spectre());
        e.memory_mut().alloc("data", 1 << 20);
        let buf = e.memory().buffer("data");
        e.run(Launch::workgroups(32), |_| TrafficKernel {
            buf,
            cycles_left: 200,
            scattered,
        })
        .unwrap()
        .metrics
        .makespan_cycles
    };
    let scattered = run(true);
    let coalesced = run(false);
    assert!(
        scattered > coalesced,
        "bandwidth model should punish scatter: {scattered} vs {coalesced}"
    );
}

#[test]
fn makespan_components_are_consistent() {
    let mut e = engine();
    let buf = e.memory().buffer("data");
    let report = e
        .run(Launch::workgroups(4), |_| TrafficKernel {
            buf,
            cycles_left: 10,
            scattered: true,
        })
        .unwrap();
    // Makespan includes launch overhead and equals the slowest CU + it.
    let max_cu = report.per_cu_cycles.iter().copied().max().unwrap();
    assert_eq!(
        report.metrics.makespan_cycles,
        max_cu + GpuConfig::fiji().cost.launch_overhead
    );
    assert!(report.seconds > 0.0);
    // Each wave ran exactly cycles_left work cycles.
    assert_eq!(report.metrics.work_cycles, 4 * 10);
}

#[test]
fn atomics_serialize_observably() {
    // All waves hammer one word every cycle; one wave leaves it alone.
    struct Hammer {
        buf: Buffer,
        n: u32,
        wave: usize,
        hammer: bool,
    }
    impl WaveKernel for Hammer {
        fn work_cycle(&mut self, ctx: &mut WaveCtx<'_>) -> WaveStatus {
            if self.n == 0 {
                return WaveStatus::Done;
            }
            if self.hammer {
                ctx.atomic_add(self.buf, 0, 1);
            } else {
                // Each wavefront owns a private word: zero contention.
                ctx.atomic_add(self.buf, 1 + self.wave, 1);
            }
            self.n -= 1;
            if self.n == 0 {
                WaveStatus::Done
            } else {
                WaveStatus::Active
            }
        }
    }
    let time = |hammer: bool| {
        let mut e = engine();
        let buf = e.memory().buffer("data");
        e.run(Launch::workgroups(224), |info| Hammer {
            buf,
            n: 50,
            wave: info.wave_id,
            hammer,
        })
        .unwrap()
        .metrics
        .makespan_cycles
    };
    let contended = time(true);
    let spread = time(false);
    assert!(
        contended > spread,
        "same-word atomics should serialize: {contended} vs {spread}"
    );
}

#[test]
fn round_limit_is_enforced() {
    struct Forever;
    impl WaveKernel for Forever {
        fn work_cycle(&mut self, ctx: &mut WaveCtx<'_>) -> WaveStatus {
            ctx.charge_alu(1);
            WaveStatus::Active
        }
    }
    let mut e = engine();
    let err = e
        .run(Launch::workgroups(1).with_max_rounds(10), |_| Forever)
        .unwrap_err();
    assert_eq!(err, SimError::MaxRoundsExceeded { limit: 10 });
}

#[test]
fn visibility_delay_is_one_round() {
    // Wave 0 writes a flag in its 4th work cycle; wave 1 spins on a
    // *stale* read. The reader can only observe the write in a LATER
    // round, never the round it happened.
    use std::sync::{Arc, Mutex};

    struct Writer {
        buf: Buffer,
        round: u32,
    }
    impl WaveKernel for Writer {
        fn work_cycle(&mut self, ctx: &mut WaveCtx<'_>) -> WaveStatus {
            if self.round == 3 {
                ctx.global_write(self.buf, 100, 7);
                return WaveStatus::Done;
            }
            ctx.charge_alu(1);
            self.round += 1;
            WaveStatus::Active
        }
    }
    struct Reader {
        buf: Buffer,
        rounds_waited: u32,
        saw_at: Arc<Mutex<Option<u32>>>,
    }
    impl WaveKernel for Reader {
        fn work_cycle(&mut self, ctx: &mut WaveCtx<'_>) -> WaveStatus {
            if ctx.global_read_stale(self.buf, 100) == 7 {
                *self.saw_at.lock().unwrap() = Some(self.rounds_waited);
                return WaveStatus::Done;
            }
            self.rounds_waited += 1;
            if self.rounds_waited > 50 {
                return WaveStatus::Done;
            }
            WaveStatus::Active
        }
    }
    enum K {
        W(Writer),
        R(Reader),
    }
    impl WaveKernel for K {
        fn work_cycle(&mut self, ctx: &mut WaveCtx<'_>) -> WaveStatus {
            match self {
                K::W(w) => w.work_cycle(ctx),
                K::R(r) => r.work_cycle(ctx),
            }
        }
    }
    let mut e = engine();
    let buf = e.memory().buffer("data");
    let saw = Arc::new(Mutex::new(None));
    let saw_handle = Arc::clone(&saw);
    e.run(Launch::workgroups(2), move |info| {
        if info.wave_id == 0 {
            K::W(Writer { buf, round: 0 })
        } else {
            K::R(Reader {
                buf,
                rounds_waited: 0,
                saw_at: Arc::clone(&saw_handle),
            })
        }
    })
    .unwrap();
    assert_eq!(e.memory().read_u32(buf, 100), 7);
    let waited = saw
        .lock()
        .unwrap()
        .expect("reader must eventually see the flag");
    // The write lands in round 3; a stale read can observe it in round 4
    // at the earliest, i.e. after at least 4 failed polls.
    assert!(
        waited >= 4,
        "stale read observed too early ({waited} polls)"
    );
}
