//! Serving-core chaos suite: a seeded arrival trace crossed with the
//! six-dataset fault matrix.
//!
//! The service's promise is *graceful degradation under determinism*:
//! whatever a seeded fault plan does to individual queries, the outcome
//! log is golden-identical at any `--jobs` width and engine-worker
//! budget, quarantined queries never poison later ones, and the
//! segmented admission path never surfaces a `QueueFull` abort. These
//! tests pin all three against a trace that touches every main-six
//! dataset with per-query fault plans.

use ptq_graph::Dataset;
use repro_bench::serve::{
    ArrivalTrace, Disposition, Service, ServiceConfig, TraceParams, WorkloadKind,
};
use repro_bench::{Scale, Sched};

const SEED: u64 = 0x5E4E_C4A0;

/// Six-dataset pool with per-dataset scale fractions (chaos-matrix
/// proportions: comparable simulated sizes across datasets).
const POOL: &[(Dataset, f64)] = &[
    (Dataset::Synthetic, 0.004),
    (Dataset::GplusCombined, 0.1),
    (Dataset::SocLiveJournal1, 0.006),
    (Dataset::RoadNY, 0.1),
    (Dataset::RoadLKS, 0.01),
    (Dataset::RoadUSA, 0.002),
];

/// A faulted trace over the full dataset pool: every second query
/// carries a seeded fault plan, one watchdog-poisoned query burns its
/// retry budget into quarantine, and a resubmission of its signature
/// arrives after the ladder has run dry.
fn chaos_trace() -> (ArrivalTrace, u32, u32) {
    let mut trace = ArrivalTrace::seeded(
        SEED,
        &TraceParams {
            queries: 12,
            mean_gap_cycles: 3_000_000,
            deadline_range: (400_000_000, 800_000_000),
            datasets: POOL,
            fault_every: 2,
            faults_per_query: 1,
        },
    );
    let poison = trace.push_poison(WorkloadKind::Cc, Dataset::RoadLKS, 0.01, 2, 1_000_000);
    let resub = trace.push_resubmission(poison, 80_000_000);
    (trace, poison, resub)
}

fn config(engine_workers: usize) -> ServiceConfig {
    let mut config = ServiceConfig::standard(Scale::new(0.02));
    config.engine_workers = engine_workers;
    config
}

#[test]
fn outcome_log_is_golden_identical_across_jobs_and_engine_workers() {
    let (trace, _, _) = chaos_trace();
    let reference = Service::new(config(1)).run(&trace, &Sched::serial());
    for jobs in [2, 4] {
        let log = Service::new(config(1)).run(&trace, &Sched::new(jobs));
        assert_eq!(reference, log, "jobs={jobs} diverged from serial");
    }
    for workers in [2, 4] {
        let log = Service::new(config(workers)).run(&trace, &Sched::new(4));
        assert_eq!(
            reference, log,
            "engine_workers={workers} diverged from serial"
        );
    }
}

#[test]
fn quarantine_isolates_the_poison_family_and_nothing_else() {
    let (trace, poison, resub) = chaos_trace();
    let log = Service::new(config(1)).run(&trace, &Sched::new(0));

    let p = &log.outcomes[poison as usize];
    assert_eq!(p.disposition, Disposition::Quarantined);
    let evidence = p
        .recovery
        .as_ref()
        .expect("quarantine must keep the recovery log");
    assert!(evidence.aborts() > 0);

    let r = &log.outcomes[resub as usize];
    assert_eq!(
        r.disposition,
        Disposition::RejectedQuarantined,
        "resubmitting a quarantined signature must fail fast at admission"
    );
    assert_eq!(r.attempts, 0, "a rejected resubmission never runs");

    // Graceful degradation: every other query — including the faulted
    // ones that needed checkpoint-resumed retries — completes.
    for o in &log.outcomes {
        if o.id != poison && o.id != resub {
            assert_eq!(
                o.disposition,
                Disposition::Completed,
                "query {} ({} on {}) should have completed",
                o.id,
                o.workload,
                o.dataset
            );
        }
    }
    // And the fault matrix actually bit: at least one completion needed
    // a service-level retry.
    assert!(
        log.outcomes
            .iter()
            .any(|o| o.disposition == Disposition::Completed && o.attempts > 1),
        "no query exercised the retry/backoff path"
    );
}

#[test]
fn segmented_admission_path_never_aborts_queue_full() {
    // Also squeeze the backlog so admission backpressure fires: the
    // bound must surface as typed rejections, never as queue aborts.
    let (mut trace, _, _) = chaos_trace();
    for q in &mut trace.queries {
        // Compress arrivals into a burst to force a deep backlog.
        q.arrival_cycle /= 100;
    }
    let mut cfg = config(1);
    cfg.backlog_limit = 4;
    let log = Service::new(cfg).run(&trace, &Sched::new(0));
    assert_eq!(
        log.admission_errors, 0,
        "the segmented host queues must accept every admitted token"
    );
    assert_eq!(
        log.execution_queue_full, 0,
        "the segmented execution variant must never abort queue-full"
    );
    assert!(
        log.count(Disposition::RejectedQueueFull) > 0,
        "the squeezed backlog should have produced typed backpressure"
    );
    // Backpressure is policy, not data loss: everything admitted still
    // reaches a terminal state.
    for o in &log.outcomes {
        assert!(
            o.attempts > 0
                || matches!(
                    o.disposition,
                    Disposition::Shed
                        | Disposition::RejectedQueueFull
                        | Disposition::RejectedQuarantined
                ),
            "query {} neither ran nor was rejected",
            o.id
        );
    }
}
