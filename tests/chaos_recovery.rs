//! Chaos differential tests: seeded fault matrices (wave-kill × CU stall
//! × memory poison) injected into recoverable BFS and SSSP runs over the
//! paper's six dataset shapes, checked byte-for-byte against fault-free
//! goldens.
//!
//! Both kernels are label-correcting — an atomic-min worklist converges
//! to exact values in any execution order — so a run that survives
//! aborts via checkpoint/resume must finish with a value array
//! *identical* to an uninterrupted run's. These tests pin that property
//! for BFS, pin that SSSP inherits it through the workload-generic
//! recovery path (DESIGN.md §10) with fences in *distance* units, plus
//! the acceptance scenario for both: resuming from a checkpoint replays
//! strictly fewer rounds than restarting from scratch under the same
//! fault plan.

use ptq::bfs::workload::Sssp;
use ptq::bfs::{
    run_bfs, run_bfs_recoverable, run_sssp, run_sssp_recoverable, PtConfig, RecoveryPolicy,
};
use ptq::graph::{random_weights, Dataset};
use ptq::queue::Variant;
use simt::{AbortReason, FaultPlan, FaultSpec, GpuConfig};

/// The six dataset shapes at chaos-test scale: fractions chosen so every
/// graph lands at roughly 1–2.5k vertices (seconds per run, not minutes).
const CHAOS_SCALE: [(Dataset, f64); 6] = [
    (Dataset::Synthetic, 0.0002),
    (Dataset::GplusCombined, 0.005),
    (Dataset::SocLiveJournal1, 0.0003),
    (Dataset::RoadNY, 0.005),
    (Dataset::RoadLKS, 0.0005),
    (Dataset::RoadUSA, 0.0001),
];

/// A seeded fault matrix covering all three fault kinds, scaled to the
/// tiny test GPU (3 workgroups on `test_tiny`).
fn chaos_plan(seed: u64, num_vertices: usize) -> FaultPlan {
    FaultPlan::seeded(
        seed,
        &FaultSpec {
            wave_kills: 2,
            cu_stalls: 2,
            mem_poisons: 2,
            max_round: 8, // early rounds: every launch reaches them
            waves: 3,
            cus: 2,
            max_stall_rounds: 4,
            max_stall_cycles: 200,
            poison_buffer: "costs".into(),
            poison_words: num_vertices,
        },
    )
}

fn chaos_policy() -> RecoveryPolicy {
    RecoveryPolicy {
        checkpoint_levels: 3,
        max_attempts: 16,
        ..RecoveryPolicy::default()
    }
}

/// The chaos differential: on every dataset shape, a recoverable run
/// under a seeded fault matrix converges to levels byte-identical to the
/// fault-free golden, and the RF/AN variant still audits retry-free
/// (zero CAS failures, zero empty-queue retries) on every surviving
/// launch — recovery must not silently degrade the queue's claims.
#[test]
fn seeded_chaos_matrix_converges_on_all_six_datasets() {
    let gpu = GpuConfig::test_tiny();
    for (i, (dataset, fraction)) in CHAOS_SCALE.iter().enumerate() {
        let graph = dataset.build(*fraction);
        let source = dataset.source();
        let config = PtConfig::new(Variant::RfAn, 3);
        let golden = run_bfs(&gpu, &graph, source, &config)
            .unwrap_or_else(|e| panic!("{dataset:?}: golden run failed: {e}"));

        let plan = chaos_plan(0xC4A05 ^ (i as u64) << 8, graph.num_vertices());
        assert_eq!(plan.len(), 6, "{dataset:?}: fault matrix incomplete");
        let run = run_bfs_recoverable(&gpu, &graph, source, &config, &chaos_policy(), &plan)
            .unwrap_or_else(|e| panic!("{dataset:?}: chaos run failed: {e}"));

        assert_eq!(
            run.values, golden.values,
            "{dataset:?}: recovered levels diverge from fault-free golden"
        );
        assert_eq!(run.reached, golden.reached, "{dataset:?}");
        // The retry-free claim survives chaos: audited inside every epoch,
        // and visible in the merged counters.
        assert_eq!(run.metrics.cas_failures, 0, "{dataset:?}: RF/AN retried");
        assert_eq!(
            run.metrics.queue_empty_retries, 0,
            "{dataset:?}: RF/AN spun on empty"
        );
    }
}

/// The segmented leg of the chaos matrix: SEG-RF/AN rides the same
/// checkpoint/resume loop across all six dataset shapes, but its abort
/// vocabulary has no queue-full entry — every recovery attempt in the
/// log must be an injected fault, never a capacity event, and no
/// capacity regrow ever triggers. Levels stay byte-identical to the
/// fault-free segmented golden, and the retry-free audit holds on every
/// surviving launch.
#[test]
fn segmented_chaos_matrix_recovers_without_queue_full_on_all_six_datasets() {
    let gpu = GpuConfig::test_tiny();
    for (i, (dataset, fraction)) in CHAOS_SCALE.iter().enumerate() {
        let graph = dataset.build(*fraction);
        let source = dataset.source();
        let config = PtConfig::new(Variant::SegRfAn, 3);
        let golden = run_bfs(&gpu, &graph, source, &config)
            .unwrap_or_else(|e| panic!("{dataset:?}: segmented golden run failed: {e}"));

        let plan = chaos_plan(0xC4A05 ^ (i as u64) << 8, graph.num_vertices());
        let run = run_bfs_recoverable(&gpu, &graph, source, &config, &chaos_policy(), &plan)
            .unwrap_or_else(|e| panic!("{dataset:?}: segmented chaos run failed: {e}"));

        assert_eq!(
            run.values, golden.values,
            "{dataset:?}: recovered levels diverge from fault-free segmented golden"
        );
        assert_eq!(run.reached, golden.reached, "{dataset:?}");
        assert!(
            run.recovery
                .attempts
                .iter()
                .all(|a| !matches!(a.reason, AbortReason::QueueFull { .. })),
            "{dataset:?}: queue-full is unreachable on segmented variants: {:?}",
            run.recovery.attempts
        );
        assert_eq!(
            run.recovery.final_capacity_factor, config.capacity_factor,
            "{dataset:?}: capacity regrow triggered on a segmented run"
        );
        assert_eq!(
            run.metrics.cas_failures, 0,
            "{dataset:?}: SEG-RF/AN retried"
        );
        assert_eq!(
            run.metrics.queue_empty_retries, 0,
            "{dataset:?}: SEG-RF/AN spun on empty"
        );
    }
}

/// Same chaos matrix through the AN variant (CAS-based enqueue): recovery
/// is queue-agnostic, so the differential must hold there too.
#[test]
fn chaos_matrix_converges_on_an_variant() {
    let gpu = GpuConfig::test_tiny();
    let (dataset, fraction) = CHAOS_SCALE[3]; // RoadNY: deep frontier
    let graph = dataset.build(fraction);
    let config = PtConfig::new(Variant::An, 3);
    let golden = run_bfs(&gpu, &graph, dataset.source(), &config).unwrap();
    let plan = chaos_plan(0xA17, graph.num_vertices());
    let run = run_bfs_recoverable(
        &gpu,
        &graph,
        dataset.source(),
        &config,
        &chaos_policy(),
        &plan,
    )
    .unwrap();
    assert_eq!(run.values, golden.values);
}

/// Determinism: the same seed yields the same fault plan, and the same
/// (graph, plan, policy) yields bit-identical metrics, recovery log, and
/// simulated time across repeated runs — the property that lets the CI
/// chaos job byte-diff its report against a pinned golden.
#[test]
fn chaos_runs_are_deterministic() {
    let gpu = GpuConfig::test_tiny();
    let (dataset, fraction) = CHAOS_SCALE[4]; // RoadLKS
    let graph = dataset.build(fraction);
    let config = PtConfig::new(Variant::RfAn, 3);
    let plan_a = chaos_plan(99, graph.num_vertices());
    let plan_b = chaos_plan(99, graph.num_vertices());
    assert_eq!(plan_a, plan_b, "seeded plans must be identical");

    let a = run_bfs_recoverable(
        &gpu,
        &graph,
        dataset.source(),
        &config,
        &chaos_policy(),
        &plan_a,
    )
    .unwrap();
    let b = run_bfs_recoverable(
        &gpu,
        &graph,
        dataset.source(),
        &config,
        &chaos_policy(),
        &plan_b,
    )
    .unwrap();
    assert_eq!(a.metrics, b.metrics);
    assert_eq!(a.recovery, b.recovery);
    assert_eq!(a.values, b.values);
    assert_eq!(a.seconds, b.seconds);
}

/// The acceptance scenario: the same graph and the same fault plan, run
/// once with tight checkpoints and once with `checkpoint_levels: u32::MAX`
/// (the from-scratch degenerate — one unfenced launch, recovery restarts
/// the traversal). Both must converge to the identical golden levels, both
/// must survive exactly one injected abort, and the checkpointed run must
/// replay strictly fewer rounds.
#[test]
fn checkpoint_resume_replays_fewer_rounds_than_restart() {
    let gpu = GpuConfig::test_tiny();
    let (dataset, fraction) = CHAOS_SCALE[3]; // RoadNY: deep, many epochs
    let graph = dataset.build(fraction);
    let source = dataset.source();
    let config = PtConfig::new(Variant::RfAn, 3);
    let golden = run_bfs(&gpu, &graph, source, &config).unwrap();

    // One wave-kill early in the launch: fires in epoch 0 of the fenced
    // run and at round 2 of the unfenced run alike.
    let plan = FaultPlan::new().kill_wave(2, 1);

    let fenced_policy = RecoveryPolicy {
        checkpoint_levels: 2,
        ..RecoveryPolicy::default()
    };
    let scratch_policy = RecoveryPolicy {
        checkpoint_levels: u32::MAX,
        ..RecoveryPolicy::default()
    };
    let fenced = run_bfs_recoverable(&gpu, &graph, source, &config, &fenced_policy, &plan).unwrap();
    let scratch =
        run_bfs_recoverable(&gpu, &graph, source, &config, &scratch_policy, &plan).unwrap();

    assert_eq!(fenced.values, golden.values, "checkpointed run diverged");
    assert_eq!(scratch.values, golden.values, "from-scratch run diverged");
    assert_eq!(
        fenced.recovery.aborts(),
        1,
        "fenced run must be interrupted"
    );
    assert_eq!(
        scratch.recovery.aborts(),
        1,
        "scratch run must be interrupted"
    );
    assert!(
        fenced.recovery.rounds_replayed < scratch.recovery.rounds_replayed,
        "checkpointing must replay fewer rounds: fenced {} vs scratch {}",
        fenced.recovery.rounds_replayed,
        scratch.recovery.rounds_replayed
    );
}

/// SSSP inherits the whole recovery stack through the workload layer:
/// a seeded chaos matrix (wave-kill × CU stall × poison of the "dist"
/// value buffer) injected into a recoverable SSSP run converges to
/// distances byte-identical to the fault-free golden, still audited
/// retry-free on RF/AN.
#[test]
fn sssp_chaos_matrix_converges_to_golden_distances() {
    let gpu = GpuConfig::test_tiny();
    let (dataset, fraction) = CHAOS_SCALE[3]; // RoadNY: deep frontier
    let graph = dataset.build(fraction);
    let source = dataset.source();
    let weights = random_weights(&graph, 9, 0x55);
    let golden = run_sssp(&gpu, &graph, &weights, source, Variant::RfAn, 3).unwrap();

    let workload = Sssp::new(source, weights.clone());
    let config = PtConfig::for_workload(&workload, Variant::RfAn, 3);
    let plan = FaultPlan::seeded(
        0x5559,
        &FaultSpec {
            wave_kills: 2,
            cu_stalls: 2,
            mem_poisons: 2,
            max_round: 8,
            waves: 3,
            cus: 2,
            max_stall_rounds: 4,
            max_stall_cycles: 200,
            poison_buffer: "dist".into(),
            poison_words: graph.num_vertices(),
        },
    );
    assert_eq!(plan.len(), 6, "fault matrix incomplete");
    let policy = RecoveryPolicy {
        checkpoint_levels: 12, // distance units per epoch (weights 1..=9)
        max_attempts: 16,
        ..RecoveryPolicy::default()
    };
    let run = run_sssp_recoverable(&gpu, &graph, &weights, source, &config, &policy, &plan)
        .unwrap_or_else(|e| panic!("SSSP chaos run failed: {e}"));

    assert_eq!(
        run.values, golden.values,
        "recovered distances diverge from fault-free golden"
    );
    assert!(run.recovery.aborts() >= 1, "chaos must actually interrupt");
    assert_eq!(run.metrics.cas_failures, 0, "RF/AN retried");
    assert_eq!(run.metrics.queue_empty_retries, 0, "RF/AN spun on empty");
}

/// The SSSP acceptance scenario mirrors the BFS one: same graph, same
/// fault plan, fenced (distance-stride checkpoints) vs from-scratch
/// recovery — both exact, the checkpointed run replays strictly fewer
/// rounds.
#[test]
fn sssp_checkpoint_resume_replays_fewer_rounds_than_restart() {
    let gpu = GpuConfig::test_tiny();
    let (dataset, fraction) = CHAOS_SCALE[3]; // RoadNY: deep, many epochs
    let graph = dataset.build(fraction);
    let source = dataset.source();
    let weights = random_weights(&graph, 7, 0x77);
    let golden = run_sssp(&gpu, &graph, &weights, source, Variant::RfAn, 3).unwrap();

    let workload = Sssp::new(source, weights.clone());
    let config = PtConfig::for_workload(&workload, Variant::RfAn, 3);
    let plan = FaultPlan::new().kill_wave(2, 1);
    let fenced_policy = RecoveryPolicy {
        checkpoint_levels: 8, // distance units per epoch
        ..RecoveryPolicy::default()
    };
    let scratch_policy = RecoveryPolicy {
        checkpoint_levels: u32::MAX,
        ..RecoveryPolicy::default()
    };
    let fenced = run_sssp_recoverable(
        &gpu,
        &graph,
        &weights,
        source,
        &config,
        &fenced_policy,
        &plan,
    )
    .unwrap();
    let scratch = run_sssp_recoverable(
        &gpu,
        &graph,
        &weights,
        source,
        &config,
        &scratch_policy,
        &plan,
    )
    .unwrap();

    assert_eq!(fenced.values, golden.values, "checkpointed run diverged");
    assert_eq!(scratch.values, golden.values, "from-scratch run diverged");
    assert_eq!(
        fenced.recovery.aborts(),
        1,
        "fenced run must be interrupted"
    );
    assert_eq!(
        scratch.recovery.aborts(),
        1,
        "scratch run must be interrupted"
    );
    assert!(
        fenced.recovery.rounds_replayed < scratch.recovery.rounds_replayed,
        "checkpointing must replay fewer rounds: fenced {} vs scratch {}",
        fenced.recovery.rounds_replayed,
        scratch.recovery.rounds_replayed
    );
}

/// An empty fault plan through the recoverable runner leaves the result
/// identical to the plain runner on a real dataset shape — the overlay
/// costs nothing when unused.
#[test]
fn empty_plan_matches_plain_runner_on_dataset() {
    let gpu = GpuConfig::test_tiny();
    let (dataset, fraction) = CHAOS_SCALE[1]; // Gplus: dense hub
    let graph = dataset.build(fraction);
    let config = PtConfig::new(Variant::RfAn, 3);
    let plain = run_bfs(&gpu, &graph, dataset.source(), &config).unwrap();
    let policy = RecoveryPolicy {
        checkpoint_levels: u32::MAX,
        ..RecoveryPolicy::default()
    };
    let run = run_bfs_recoverable(
        &gpu,
        &graph,
        dataset.source(),
        &config,
        &policy,
        &FaultPlan::EMPTY,
    )
    .unwrap();
    assert_eq!(run.values, plain.values);
    // Every behavioral counter matches the plain runner exactly. Timing
    // (makespan) may drift a few cycles: the epoch runner allocates a
    // spill buffer, which shifts the queue's flat address and thus
    // coalescing segment alignment.
    assert_eq!(run.metrics.rounds, plain.metrics.rounds);
    assert_eq!(run.metrics.work_cycles, plain.metrics.work_cycles);
    assert_eq!(run.metrics.global_atomics, plain.metrics.global_atomics);
    assert_eq!(
        run.metrics.scheduler_atomics,
        plain.metrics.scheduler_atomics
    );
    assert_eq!(run.metrics.global_mem_ops, plain.metrics.global_mem_ops);
    assert_eq!(run.metrics.injected_faults, 0);
    assert_eq!(run.metrics.injected_stall_cycles, 0);
    assert!(run.recovery.attempts.is_empty());
}
