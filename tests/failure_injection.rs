//! Failure injection: the error paths a production library must handle
//! gracefully — queue overflow, kernel aborts racing other wavefronts,
//! device faults, and capacity-recovery loops.

use ptq::bfs::{run_bfs, PtConfig};
use ptq::graph::gen::synthetic_tree;
use ptq::graph::validate_levels;
use ptq::queue::device::{make_wave_queue, LanePhase, QueueLayout, WaveQueue};
use ptq::queue::host::{RfAnQueue, WorkPool};
use ptq::queue::verify::{AnScenario, BaseScenario, RfAnScenario};
use ptq::queue::Variant;
use simt::{
    AbortReason, Buffer, Engine, GpuConfig, Launch, SimError, WaveCtx, WaveKernel, WaveStatus,
};
use std::collections::BTreeSet;

/// A kernel where one wavefront floods the queue beyond capacity while
/// the others behave: the abort must terminate the whole run promptly
/// and deterministically.
struct Flooder {
    queue: Box<dyn WaveQueue>,
    lanes: Vec<LanePhase>,
    is_flooder: bool,
    round: u32,
}

impl WaveKernel for Flooder {
    fn work_cycle(&mut self, ctx: &mut WaveCtx<'_>) -> WaveStatus {
        self.round += 1;
        if self.is_flooder {
            let tokens: Vec<u32> = (0..64).map(|i| self.round * 64 + i).collect();
            let _ = self.queue.enqueue(ctx, &tokens);
        } else {
            for l in self.lanes.iter_mut() {
                if *l == LanePhase::Idle {
                    *l = LanePhase::Hungry;
                }
            }
            self.queue.acquire(ctx, &mut self.lanes);
            for l in self.lanes.iter_mut() {
                if matches!(*l, LanePhase::Ready(_)) {
                    *l = LanePhase::Idle;
                }
            }
        }
        WaveStatus::Active
    }
}

#[test]
fn queue_full_abort_terminates_multi_wave_runs() {
    for variant in Variant::ALL {
        let mut engine = Engine::new(GpuConfig::test_tiny());
        let layout = QueueLayout::setup(engine.memory_mut(), "q", 128);
        let err = engine
            .run(Launch::workgroups(4).with_max_rounds(10_000), |info| {
                Flooder {
                    queue: make_wave_queue(variant, layout),
                    lanes: vec![LanePhase::Idle; info.wave_size],
                    is_flooder: info.wave_id == 0,
                    round: 0,
                }
            })
            .unwrap_err();
        match err {
            SimError::KernelAbort {
                reason:
                    AbortReason::QueueFull {
                        requested,
                        capacity,
                    },
                ..
            } => {
                assert_eq!(capacity, 128, "{variant:?}: wrong capacity reported");
                assert!(
                    requested >= capacity as u64,
                    "{variant:?}: requested {requested} should exceed capacity"
                );
            }
            other => panic!("{variant:?}: expected structured queue-full abort, got {other}"),
        }
    }
}

/// The BFS runner's capacity-doubling recovery: a tiny initial capacity
/// factor must still converge to a correct traversal.
#[test]
fn bfs_recovers_from_undersized_queue() {
    let graph = synthetic_tree(800, 4);
    let mut config = PtConfig::new(Variant::RfAn, 3);
    config.capacity_factor = 0.2; // ~160 slots: forces several doublings
    let run = run_bfs(&GpuConfig::test_tiny(), &graph, 0, &config).unwrap();
    validate_levels(&graph, 0, &run.values).unwrap();
    // The recovery log classifies every abort structurally.
    assert!(run.recovery.aborts() >= 1, "undersized queue must abort");
    assert!(
        run.recovery
            .attempts
            .iter()
            .all(|a| a.reason.is_queue_full()),
        "every logged abort is a queue-full: {:?}",
        run.recovery.attempts
    );
    assert!(run.recovery.final_capacity_factor > config.capacity_factor);
    assert_eq!(run.recovery.rounds_replayed, run.metrics.rounds);
}

/// A device fault (out-of-bounds access) in one wavefront fails the whole
/// run with the precise fault, not a hang or a corrupted result.
#[test]
fn device_fault_is_reported_not_swallowed() {
    struct Oob {
        buf: Buffer,
        trigger: bool,
        count: u32,
    }
    impl WaveKernel for Oob {
        fn work_cycle(&mut self, ctx: &mut WaveCtx<'_>) -> WaveStatus {
            self.count += 1;
            if self.trigger && self.count == 3 {
                ctx.global_write(self.buf, 1 << 20, 7);
            } else {
                ctx.charge_alu(1);
            }
            if self.count > 100 {
                WaveStatus::Done
            } else {
                WaveStatus::Active
            }
        }
    }
    let mut engine = Engine::new(GpuConfig::test_tiny());
    engine.memory_mut().alloc("buf", 16);
    let buf = engine.memory().buffer("buf");
    let err = engine
        .run(Launch::workgroups(4), |info| Oob {
            buf,
            trigger: info.wave_id == 2,
            count: 0,
        })
        .unwrap_err();
    assert!(
        matches!(err, SimError::OutOfBounds { len: 16, .. }),
        "{err}"
    );
}

/// Host queue overflow mid-stream leaves already-published tokens intact
/// and deliverable.
#[test]
fn host_overflow_preserves_published_tokens() {
    let q = RfAnQueue::new(4);
    q.enqueue_batch(&[1, 2]).unwrap();
    assert!(q.enqueue_batch(&[3, 4, 5]).is_err()); // 2 + 3 > 4
                                                   // The failed batch must not have corrupted anything readable.
    let got: Vec<u32> = q
        .reserve(2)
        .filter_map(|s| q.try_take(ptq::queue::host::SlotTicket(s)))
        .collect();
    assert_eq!(got, vec![1, 2]);
}

/// WorkPool overflow unblocks every worker (no hang) and reports the
/// error; the pool is reusable after reset.
#[test]
fn workpool_overflow_recovers_after_reset() {
    let mut pool = WorkPool::new(8);
    let result = pool.run(4, &[1], |t, out| {
        out.push(t + 1);
        out.push(t + 2);
    });
    assert!(result.is_err(), "exponential fanout must overflow");
    pool.reset();
    let counted = std::sync::atomic::AtomicU64::new(0);
    pool.run(2, &[5, 6], |_, _| {
        counted.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    })
    .unwrap();
    assert_eq!(counted.load(std::sync::atomic::Ordering::Relaxed), 2);
}

/// Queue-full under the interleaving explorer: every schedule of a BASE
/// overflow race terminates (the explorer panics on deadlock), rejects a
/// deterministic number of pushes, and never double-delivers.
#[test]
fn explored_base_overflow_aborts_deterministically() {
    let s = BaseScenario {
        capacity: 2,
        producers: vec![vec![1, 2], vec![3]],
        consumers: vec![1],
    };
    let r = s.run(200_000);
    assert!(r.exhausted, "overflow race should enumerate fully");
    // Three pushes into two lifetime slots: exactly one rejection in
    // EVERY interleaving — which token loses varies, how many never does.
    assert_eq!(r.rejections, BTreeSet::from([1]));
    for d in &r.delivered {
        let mut dd = d.clone();
        dd.dedup();
        assert_eq!(dd.len(), d.len(), "double delivery in {d:?}");
    }
}

/// AN overflow under the explorer: the losing batch is rejected whole in
/// every schedule (all-or-nothing), never partially published.
#[test]
fn explored_an_overflow_rejects_whole_batch() {
    let s = AnScenario {
        capacity: 3,
        producers: vec![vec![vec![1]], vec![vec![2, 3]], vec![vec![4, 5]]],
        consumers: vec![],
    };
    let r = s.run(50_000);
    assert!(r.exhausted);
    // 1 + 2 + 2 tokens into 3 slots: exactly one 2-batch loses, whole.
    assert_eq!(r.rejections, BTreeSet::from([1]));
}

/// RF/AN overflow under the explorer: abort semantics — the overshooting
/// batch publishes nothing, `Rear` stays advanced, and every schedule
/// still linearizes (the spec models the abort explicitly).
#[test]
fn explored_rfan_overflow_has_abort_semantics() {
    let s = RfAnScenario {
        capacity: 2,
        producers: vec![vec![vec![1, 2]], vec![vec![3, 4]]],
        consumers: vec![(2, 4)],
    };
    let r = s.run(50_000);
    assert!(r.exhausted);
    // Whichever batch reserves second overflows: exactly one abort.
    assert_eq!(r.rejections, BTreeSet::from([1]));
    for d in &r.delivered {
        assert!(d.len() <= 2, "aborted batch leaked tokens: {d:?}");
        let mut dd = d.clone();
        dd.dedup();
        assert_eq!(dd.len(), d.len(), "double delivery in {d:?}");
    }
}

/// SSSP's capacity-recovery loop: adversarial weights that maximize
/// re-enqueues still converge to exact distances.
#[test]
fn sssp_recovers_under_reenqueue_pressure() {
    use ptq::bfs::run_sssp;
    use ptq::graph::{validate_distances, CsrBuilder};

    // A graph designed for label-correction churn: long chain with heavy
    // shortcuts that get improved late.
    let n = 120;
    let mut b = CsrBuilder::new(n);
    for i in 0..n as u32 - 1 {
        b.add_edge(i, i + 1);
    }
    for i in 0..n as u32 - 10 {
        b.add_edge(i, i + 10);
    }
    let g = b.build();
    // Chain edges cost 1, shortcut edges cost 5: shortcuts look good when
    // discovered but get undercut by the chain later — ordering churn.
    let mut weights_aligned = vec![0u32; g.num_edges()];
    for v in 0..n as u32 {
        let start = g.edge_start(v) as usize;
        for (k, &w) in g.neighbors(v).iter().enumerate() {
            weights_aligned[start + k] = if w == v + 1 { 1 } else { 5 };
        }
    }
    let run = run_sssp(
        &GpuConfig::test_tiny(),
        &g,
        &weights_aligned,
        0,
        Variant::RfAn,
        2,
    )
    .unwrap();
    validate_distances(&g, &weights_aligned, 0, &run.values).unwrap();
}
