//! Randomized property tests on the queue implementations: token
//! conservation, FIFO behaviour, and retry-freedom hold for *arbitrary*
//! workloads, not just the hand-picked unit-test cases.
//!
//! Each property runs as a seeded loop over a `SplitMix64` stream —
//! deterministic across runs and platforms.

use ptq::graph::rng::SplitMix64;
use ptq::queue::host::{AnQueue, BaseQueue, RfAnQueue, SlotTicket};
use ptq::queue::DNA;

const CASES: usize = 64;

/// RF/AN, single-threaded: any interleaving of batch enqueues and
/// reservations delivers every token exactly once, in FIFO order.
#[test]
fn rfan_fifo_and_conservation() {
    let mut rng = SplitMix64::seed_from_u64(0xF1F0);
    for case in 0..CASES {
        let num_batches = rng.range_u64(1, 20) as usize;
        let batches: Vec<Vec<u32>> = (0..num_batches)
            .map(|_| {
                let len = rng.range_u64(0, 20) as usize;
                (0..len).map(|_| rng.range_u32(0, DNA - 1)).collect()
            })
            .collect();
        let total: usize = batches.iter().map(Vec::len).sum();
        let q = RfAnQueue::new(total.max(1));
        let mut expected = Vec::new();
        let mut got = Vec::new();
        let mut outstanding: Vec<u64> = Vec::new();
        for batch in &batches {
            q.enqueue_batch(batch).unwrap();
            expected.extend_from_slice(batch);
            // Reserve a few slots after each batch; drain what has data.
            outstanding.extend(q.reserve(batch.len()));
            outstanding.retain(|&s| match q.try_take(SlotTicket(s)) {
                Some(tok) => {
                    got.push(tok);
                    false
                }
                None => true,
            });
        }
        // Drain the tail.
        outstanding.extend(q.reserve(total));
        for s in outstanding {
            if let Some(tok) = q.try_take(SlotTicket(s)) {
                got.push(tok);
            }
        }
        assert_eq!(got, expected, "case {case}: FIFO order and conservation");
        let stats = q.stats();
        assert_eq!(stats.cas_attempts, 0, "case {case}");
        assert_eq!(stats.empty_retries, 0, "case {case}");
    }
}

/// The AN queue conserves tokens for arbitrary push/pop batch shapes.
#[test]
fn an_conservation() {
    let mut rng = SplitMix64::seed_from_u64(0xA9);
    for case in 0..CASES {
        let num_ops = rng.range_u64(1, 40) as usize;
        let ops: Vec<(Vec<u32>, usize)> = (0..num_ops)
            .map(|_| {
                let len = rng.range_u64(0, 12) as usize;
                let batch = (0..len).map(|_| rng.range_u32(0, DNA - 1)).collect();
                (batch, rng.range_u64(0, 16) as usize)
            })
            .collect();
        let total: usize = ops.iter().map(|(b, _)| b.len()).sum();
        let q = AnQueue::new(total.max(1));
        let mut pushed = Vec::new();
        let mut popped = Vec::new();
        for (batch, pop_n) in &ops {
            q.push_batch(batch).unwrap();
            pushed.extend_from_slice(batch);
            q.pop_batch(&mut popped, *pop_n);
        }
        while q.pop_batch(&mut popped, 64) > 0 {}
        assert_eq!(popped, pushed, "case {case}: AN is FIFO single-threaded");
    }
}

/// The BASE queue conserves tokens for arbitrary push/pop sequences.
#[test]
fn base_conservation() {
    let mut rng = SplitMix64::seed_from_u64(0xBA5E);
    for case in 0..CASES {
        let num_ops = rng.range_u64(1, 80) as usize;
        let ops: Vec<(u32, bool)> = (0..num_ops)
            .map(|_| (rng.range_u32(0, DNA - 1), rng.gen_bool(0.5)))
            .collect();
        let q = BaseQueue::new(ops.len());
        let mut pushed = Vec::new();
        let mut popped = Vec::new();
        for &(tok, also_pop) in &ops {
            q.push(tok).unwrap();
            pushed.push(tok);
            if also_pop {
                if let Some(v) = q.try_pop() {
                    popped.push(v);
                }
            }
        }
        while let Some(v) = q.try_pop() {
            popped.push(v);
        }
        assert_eq!(popped, pushed, "case {case}");
    }
}

/// Capacity is a hard bound: any overflowing batch is rejected whole and
/// the queue still functions.
#[test]
fn rfan_capacity_is_exact() {
    let mut rng = SplitMix64::seed_from_u64(0xCAFE);
    for case in 0..CASES {
        let cap = rng.range_u64(1, 40) as usize;
        let extra = rng.range_u64(1, 20) as usize;
        let q = RfAnQueue::new(cap);
        let fits: Vec<u32> = (0..cap as u32).collect();
        q.enqueue_batch(&fits).unwrap();
        let overflow: Vec<u32> = (0..extra as u32).collect();
        assert!(q.enqueue_batch(&overflow).is_err(), "case {case}");
        // Everything already enqueued is still deliverable.
        let tickets = q.reserve(cap);
        let got: Vec<u32> = tickets.filter_map(|s| q.try_take(SlotTicket(s))).collect();
        assert_eq!(got, fits, "case {case}");
    }
}

/// Device-queue property: the simulated pump delivers every token exactly
/// once for arbitrary seeds/fanout/workgroup combinations. (Uses the BFS
/// runner as the pump — it validates levels, which subsumes conservation.)
mod device {
    use ptq::bfs::{run_bfs, PtConfig};
    use ptq::graph::gen::erdos_renyi;
    use ptq::graph::rng::SplitMix64;
    use ptq::graph::validate_levels;
    use ptq::queue::Variant;
    use simt::GpuConfig;

    #[test]
    fn all_variants_exact_on_random_graphs() {
        let mut rng = SplitMix64::seed_from_u64(0xDEC1CE);
        for case in 0..12 {
            let n = rng.range_u64(2, 200) as usize;
            let edge_factor = rng.range_u64(1, 6) as usize;
            let seed = rng.range_u64(0, 1000);
            let wgs = rng.range_u64(1, 5) as usize;
            let graph = erdos_renyi(n, n * edge_factor, seed);
            let source = (seed % n as u64) as u32;
            for variant in Variant::ALL {
                let run = run_bfs(
                    &GpuConfig::test_tiny(),
                    &graph,
                    source,
                    &PtConfig::new(variant, wgs),
                )
                .unwrap();
                assert!(
                    validate_levels(&graph, source, &run.values).is_ok(),
                    "case {case}: {variant:?} wrong on n={n} seed={seed}"
                );
            }
        }
    }
}
