//! Property-based tests on the queue implementations: token conservation,
//! FIFO behaviour, and retry-freedom hold for *arbitrary* workloads, not
//! just the hand-picked unit-test cases.

use proptest::collection::vec;
use proptest::prelude::*;
use ptq::queue::host::{AnQueue, BaseQueue, RfAnQueue, SlotTicket};
use ptq::queue::DNA;

proptest! {
    /// RF/AN, single-threaded: any interleaving of batch enqueues and
    /// reservations delivers every token exactly once, in FIFO order.
    #[test]
    fn rfan_fifo_and_conservation(batches in vec(vec(0u32..DNA - 1, 0..20), 1..20)) {
        let total: usize = batches.iter().map(Vec::len).sum();
        let q = RfAnQueue::new(total.max(1));
        let mut expected = Vec::new();
        let mut got = Vec::new();
        let mut outstanding: Vec<u64> = Vec::new();
        for batch in &batches {
            q.enqueue_batch(batch).unwrap();
            expected.extend_from_slice(batch);
            // Reserve a few slots after each batch; drain what has data.
            outstanding.extend(q.reserve(batch.len()));
            outstanding.retain(|&s| match q.try_take(SlotTicket(s)) {
                Some(tok) => {
                    got.push(tok);
                    false
                }
                None => true,
            });
        }
        // Drain the tail.
        outstanding.extend(q.reserve(total));
        for s in outstanding {
            if let Some(tok) = q.try_take(SlotTicket(s)) {
                got.push(tok);
            }
        }
        prop_assert_eq!(got, expected, "FIFO order and conservation");
        let stats = q.stats();
        prop_assert_eq!(stats.cas_attempts, 0);
        prop_assert_eq!(stats.empty_retries, 0);
    }

    /// The AN queue conserves tokens for arbitrary push/pop batch shapes.
    #[test]
    fn an_conservation(ops in vec((vec(0u32..DNA - 1, 0..12), 0usize..16), 1..40)) {
        let total: usize = ops.iter().map(|(b, _)| b.len()).sum();
        let q = AnQueue::new(total.max(1));
        let mut pushed = Vec::new();
        let mut popped = Vec::new();
        for (batch, pop_n) in &ops {
            q.push_batch(batch).unwrap();
            pushed.extend_from_slice(batch);
            q.pop_batch(&mut popped, *pop_n);
        }
        while q.pop_batch(&mut popped, 64) > 0 {}
        prop_assert_eq!(popped, pushed, "AN is FIFO single-threaded");
    }

    /// The BASE queue conserves tokens for arbitrary push/pop sequences.
    #[test]
    fn base_conservation(ops in vec((0u32..DNA - 1, prop::bool::ANY), 1..80)) {
        let q = BaseQueue::new(ops.len());
        let mut pushed = Vec::new();
        let mut popped = Vec::new();
        for &(tok, also_pop) in &ops {
            q.push(tok).unwrap();
            pushed.push(tok);
            if also_pop {
                if let Some(v) = q.try_pop() {
                    popped.push(v);
                }
            }
        }
        while let Some(v) = q.try_pop() {
            popped.push(v);
        }
        prop_assert_eq!(popped, pushed);
    }

    /// Capacity is a hard bound: any overflowing batch is rejected whole
    /// and the queue still functions.
    #[test]
    fn rfan_capacity_is_exact(cap in 1usize..40, extra in 1usize..20) {
        let q = RfAnQueue::new(cap);
        let fits: Vec<u32> = (0..cap as u32).collect();
        q.enqueue_batch(&fits).unwrap();
        let overflow: Vec<u32> = (0..extra as u32).collect();
        prop_assert!(q.enqueue_batch(&overflow).is_err());
        // Everything already enqueued is still deliverable.
        let tickets = q.reserve(cap);
        let got: Vec<u32> = tickets
            .filter_map(|s| q.try_take(SlotTicket(s)))
            .collect();
        prop_assert_eq!(got, fits);
    }
}

/// Device-queue property: the simulated pump delivers every token exactly
/// once for arbitrary seeds/fanout/workgroup combinations. (Uses the BFS
/// runner as the pump — it validates levels, which subsumes conservation.)
mod device {
    use proptest::prelude::*;
    use ptq::bfs::{run_bfs, BfsConfig};
    use ptq::graph::gen::erdos_renyi;
    use ptq::graph::validate_levels;
    use ptq::queue::Variant;
    use simt::GpuConfig;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]
        #[test]
        fn all_variants_exact_on_random_graphs(
            n in 2usize..200,
            edge_factor in 1usize..6,
            seed in 0u64..1000,
            wgs in 1usize..5,
        ) {
            let graph = erdos_renyi(n, n * edge_factor, seed);
            let source = (seed % n as u64) as u32;
            for variant in Variant::ALL {
                let run = run_bfs(
                    &GpuConfig::test_tiny(),
                    &graph,
                    source,
                    &BfsConfig::new(variant, wgs),
                )
                .unwrap();
                prop_assert!(validate_levels(&graph, source, &run.costs).is_ok(),
                    "{:?} wrong on n={} seed={}", variant, n, seed);
            }
        }
    }
}
