//! Linearizability of the host queues under exhaustive + sampled
//! interleaving exploration (`gpu_queue::verify`).
//!
//! Every scenario here runs its schedules through the Wing–Gong checker
//! against the batch-aware sequential specs; a single non-linearizable
//! history panics inside the scenario runner. The default budgets keep
//! the suite in CI's PR-gating time box; the `verify-deep` job raises
//! them via `PTQ_SCHEDULES` (see `.github/workflows/ci.yml`).

use ptq::queue::verify::{
    conformance_suite, run_conformance, schedule_budget, AnScenario, BaseScenario, RfAnScenario,
    ScenarioReport, SegmentedScenario,
};
use std::collections::BTreeSet;

/// Default DFS budget per scenario. The acceptance bar is >= 1,000
/// distinct interleavings per host-queue scenario in the default run;
/// leave headroom above it.
const DEFAULT_BUDGET: usize = 1_500;

fn assert_coverage(r: &ScenarioReport, what: &str) {
    // Either the scenario's whole schedule space was smaller than the
    // budget and fully enumerated, or we explored at least 1,000 distinct
    // schedules of it.
    assert!(
        r.exhausted || r.schedules >= 1_000,
        "{what}: only {} schedules (exhausted: {})",
        r.schedules,
        r.exhausted
    );
    assert_eq!(
        r.histories_checked, r.schedules,
        "{what}: unchecked history"
    );
}

// ------------------------------------------------------------- BASE ----

#[test]
fn base_two_producers_two_consumers() {
    let s = BaseScenario {
        capacity: 8,
        producers: vec![vec![1, 2], vec![3]],
        consumers: vec![2, 1],
    };
    let r = s.run(schedule_budget(DEFAULT_BUDGET));
    assert_coverage(&r, "BASE 2p2c");
    assert_eq!(r.rejections, BTreeSet::from([0]), "capacity 8 never fills");
    // Conservation: no schedule delivers a token twice or invents one.
    for d in &r.delivered {
        let mut dd = d.clone();
        dd.dedup();
        assert_eq!(dd.len(), d.len(), "double delivery in {d:?}");
        for t in d {
            assert!([1, 2, 3].contains(t), "invented token {t}");
        }
    }
}

#[test]
fn base_three_producers_one_consumer() {
    let s = BaseScenario {
        capacity: 8,
        producers: vec![vec![10], vec![20], vec![30]],
        consumers: vec![2],
    };
    let r = s.run(schedule_budget(DEFAULT_BUDGET));
    assert_coverage(&r, "BASE 3p1c");
}

#[test]
fn base_contended_single_slot_cas_storm() {
    // Four threads racing tiny state maximizes CAS failure paths.
    let s = BaseScenario {
        capacity: 2,
        producers: vec![vec![1], vec![2], vec![3]],
        consumers: vec![1],
    };
    let r = s.run(schedule_budget(DEFAULT_BUDGET));
    assert_coverage(&r, "BASE cas storm");
    // Capacity 2, three pushes: exactly one rejection in every schedule.
    assert_eq!(r.rejections, BTreeSet::from([1]));
}

#[test]
fn base_random_sampling_beyond_dfs() {
    let s = BaseScenario {
        capacity: 8,
        producers: vec![vec![1, 2], vec![3, 4]],
        consumers: vec![2, 2],
    };
    let r = s.run_random(schedule_budget(DEFAULT_BUDGET), 0x5EED_0001);
    assert!(r.schedules >= 100, "only {} distinct samples", r.schedules);
    assert_eq!(r.histories_checked, schedule_budget(DEFAULT_BUDGET));
}

// --------------------------------------------------------------- AN ----

#[test]
fn an_batch_producers_and_consumers() {
    let s = AnScenario {
        capacity: 8,
        producers: vec![vec![vec![1, 2]], vec![vec![3, 4, 5]]],
        consumers: vec![(2, 4)],
    };
    let r = s.run(schedule_budget(DEFAULT_BUDGET));
    assert_coverage(&r, "AN 2p1c");
    assert_eq!(r.rejections, BTreeSet::from([0]));
    for d in &r.delivered {
        let mut dd = d.clone();
        dd.dedup();
        assert_eq!(dd.len(), d.len(), "double delivery in {d:?}");
    }
}

#[test]
fn an_three_threads_batch_races() {
    let s = AnScenario {
        capacity: 8,
        producers: vec![vec![vec![1], vec![2]], vec![vec![3, 4]]],
        consumers: vec![(2, 2)],
    };
    let r = s.run(schedule_budget(DEFAULT_BUDGET));
    assert_coverage(&r, "AN batch races");
}

#[test]
fn an_overflow_batch_rejected_whole_every_schedule() {
    // Capacity 3: [1,2] fits, then [3,4] must be rejected whole in every
    // interleaving (all-or-nothing), and [5] fits after.
    let s = AnScenario {
        capacity: 3,
        producers: vec![vec![vec![1, 2]], vec![vec![3, 4]]],
        consumers: vec![],
    };
    let r = s.run(schedule_budget(DEFAULT_BUDGET));
    assert!(r.exhausted);
    assert_eq!(r.rejections, BTreeSet::from([1]));
}

#[test]
fn an_random_sampling() {
    let s = AnScenario {
        capacity: 8,
        producers: vec![vec![vec![1, 2], vec![3]], vec![vec![4, 5]]],
        consumers: vec![(2, 3)],
    };
    let r = s.run_random(schedule_budget(DEFAULT_BUDGET), 0x5EED_0002);
    assert!(r.schedules >= 100, "only {} distinct samples", r.schedules);
}

// ------------------------------------------------------------ RF/AN ----

#[test]
fn rfan_reservation_races_publication() {
    let s = RfAnScenario {
        capacity: 8,
        producers: vec![vec![vec![1, 2]], vec![vec![3]]],
        consumers: vec![(2, 5), (1, 3)],
    };
    let r = s.run(schedule_budget(DEFAULT_BUDGET));
    assert_coverage(&r, "RF/AN 2p2c");
    assert_eq!(r.rejections, BTreeSet::from([0]));
    for d in &r.delivered {
        let mut dd = d.clone();
        dd.dedup();
        assert_eq!(dd.len(), d.len(), "double delivery in {d:?}");
    }
}

#[test]
fn rfan_reserve_before_data_exists() {
    // Consumers may reserve before any producer has published — the
    // design's signature move. Every interleaving must linearize.
    let s = RfAnScenario {
        capacity: 4,
        producers: vec![vec![vec![7, 8]]],
        consumers: vec![(2, 6), (2, 4)],
    };
    let r = s.run(schedule_budget(DEFAULT_BUDGET));
    assert_coverage(&r, "RF/AN early reserve");
}

#[test]
fn rfan_four_threads() {
    let s = RfAnScenario {
        capacity: 8,
        producers: vec![vec![vec![1]], vec![vec![2, 3]]],
        consumers: vec![(1, 3), (2, 3)],
    };
    let r = s.run(schedule_budget(DEFAULT_BUDGET));
    assert_coverage(&r, "RF/AN 4 threads");
}

#[test]
fn rfan_random_sampling() {
    let s = RfAnScenario {
        capacity: 8,
        producers: vec![vec![vec![1, 2], vec![3]], vec![vec![4]]],
        consumers: vec![(3, 6)],
    };
    let r = s.run_random(schedule_budget(DEFAULT_BUDGET), 0x5EED_0003);
    assert!(r.schedules >= 100, "only {} distinct samples", r.schedules);
}

// ------------------------------------------------- SEG-RF/AN (segmented) ----

#[test]
fn segmented_boundary_straddling_reserve() {
    // seg_cap 2, one batch of 3: the reservation straddles the segment
    // boundary, so the producer must install segment 1 before it may
    // publish its tail token. Every interleaving with the two racing
    // consumers must linearize, with no overflow rejection possible.
    let s = SegmentedScenario {
        seg_cap: 2,
        producers: vec![vec![vec![1, 2, 3]]],
        consumers: vec![(2, 5), (1, 3)],
    };
    let r = s.run(schedule_budget(DEFAULT_BUDGET));
    assert_coverage(&r, "SEG boundary straddle");
    assert_eq!(r.rejections, BTreeSet::from([0]), "segmented never rejects");
    for d in &r.delivered {
        let mut dd = d.clone();
        dd.dedup();
        assert_eq!(dd.len(), d.len(), "double delivery in {d:?}");
        for t in d {
            assert!([1, 2, 3].contains(t), "invented token {t}");
        }
    }
}

#[test]
fn segmented_append_vs_drain_race() {
    // Two producers race segment installation while a consumer drains the
    // queue out from under them: the install linearization point (one lock
    // acquisition per directory append) must commute with concurrent
    // publishes and takes in every schedule.
    let s = SegmentedScenario {
        seg_cap: 2,
        producers: vec![vec![vec![1, 2]], vec![vec![3]]],
        consumers: vec![(3, 6)],
    };
    let r = s.run(schedule_budget(DEFAULT_BUDGET));
    assert_coverage(&r, "SEG append vs drain");
    assert_eq!(r.rejections, BTreeSet::from([0]));
}

#[test]
fn segmented_recycle_aba_single_slot_segments() {
    // seg_cap 1: every token occupies its own segment, so each take
    // retires a segment and pushes its storage onto the recycle pool,
    // from which the next install immediately re-arms it. The maximal
    // install/publish/take/recycle interleaving stress for ABA bugs.
    let s = SegmentedScenario {
        seg_cap: 1,
        producers: vec![vec![vec![1]], vec![vec![2]]],
        consumers: vec![(2, 5)],
    };
    let r = s.run(schedule_budget(DEFAULT_BUDGET));
    assert_coverage(&r, "SEG recycle/ABA");
    assert_eq!(r.rejections, BTreeSet::from([0]));
    for d in &r.delivered {
        let mut dd = d.clone();
        dd.dedup();
        assert_eq!(dd.len(), d.len(), "double delivery in {d:?}");
    }
}

#[test]
fn segmented_random_sampling() {
    let s = SegmentedScenario {
        seg_cap: 2,
        producers: vec![vec![vec![1, 2], vec![3]], vec![vec![4]]],
        consumers: vec![(3, 6)],
    };
    let r = s.run_random(schedule_budget(DEFAULT_BUDGET), 0x5EED_0004);
    assert!(r.schedules >= 100, "only {} distinct samples", r.schedules);
}

// ------------------------------------------------- conformance harness ----

#[test]
fn conformance_matrix_covers_every_host_variant() {
    // The reusable conformance harness runs every host queue variant —
    // bounded and segmented — through one shared scenario matrix. Ordered
    // labels double as a registry check: adding a variant without wiring
    // it into the suite fails here.
    let reports: Vec<_> = conformance_suite()
        .iter()
        .map(|mk| run_conformance(*mk))
        .collect();
    let labels: Vec<&str> = reports.iter().map(|r| r.label).collect();
    assert_eq!(
        labels,
        [
            "BASE",
            "AN",
            "MUTEX",
            "RF/AN",
            "SEG-RF/AN",
            "SEG-RF",
            "SEG-AN"
        ]
    );
    for r in &reports {
        assert_eq!(r.cases.len(), 5, "{}: missing conformance case", r.label);
        if r.label.starts_with("SEG") {
            assert!(r.segment_appends > 0, "{}: never grew a segment", r.label);
        } else {
            assert_eq!(r.segment_appends, 0, "{}: bounded queue appended", r.label);
        }
    }
}
