//! Parallel-engine differential tests: the deterministic plan/commit
//! split (DESIGN.md §12) must make worker count *unobservable* in every
//! simulated quantity.
//!
//! The engine's round loop splits into a parallel, read-only **plan**
//! phase (sharded across `engine_workers` host threads) and the
//! historical serial **commit** phase; the determinism contract says a
//! run at any worker count produces the same bytes as the serial
//! engine. These tests pin that contract end to end:
//!
//! * all four workloads × the paper's six dataset shapes through the
//!   parallel engine at 1/2/4 workers, asserting byte-identical `Run`
//!   reports (simulated seconds, `Metrics`, value arrays, reach counts,
//!   per-CU cycle vectors) and retry-free RF/AN audits,
//! * a chaos leg proving seeded `FaultPlan` injection aborts on
//!   identical rounds and checkpoint/resume replays identical epochs
//!   under parallel execution (the full `RecoveryLog` is compared),
//! * a non-vacuousness check: the multi-worker runs must actually have
//!   exercised the plan phase (`Profile::plan_rounds > 0`).
//!
//! `Profile` itself is deliberately *not* compared across worker
//! counts: it reports host-side execution mechanics (including the
//! worker gauge and plan counters) that the determinism contract
//! explicitly excludes.

use ptq::bfs::workload::{Bfs, ConnectedComponents, PrDelta, PtWorkload, Sssp};
use ptq::bfs::{run_recoverable, run_workload, PtConfig, RecoveryPolicy, Run};
use ptq::graph::{random_weights, Dataset};
use ptq::queue::Variant;
use simt::{FaultPlan, FaultSpec, GpuConfig};

/// The six dataset shapes at differential-test scale (the chaos suite's
/// fractions: roughly 1–2.5k vertices each).
const PAR_SCALE: [(Dataset, f64); 6] = [
    (Dataset::Synthetic, 0.0002),
    (Dataset::GplusCombined, 0.005),
    (Dataset::SocLiveJournal1, 0.0003),
    (Dataset::RoadNY, 0.005),
    (Dataset::RoadLKS, 0.0005),
    (Dataset::RoadUSA, 0.0001),
];

/// Worker counts the differential sweeps compare against the serial
/// baseline. Both exceed this box's likely core count on CI — the
/// engine deliberately does not clamp, so oversubscribed planning still
/// has to produce identical bytes.
const WORKER_SWEEP: [usize; 2] = [2, 4];

fn config_for(variant: Variant, workers: usize) -> PtConfig {
    let mut config = PtConfig::new(variant, 3);
    config.engine_workers = workers;
    config
}

fn config(workers: usize) -> PtConfig {
    config_for(Variant::RfAn, workers)
}

/// Byte-level equality over everything the determinism contract covers.
/// Simulated seconds are compared as bits: "identical" means identical,
/// not merely within float tolerance.
fn assert_runs_identical(serial: &Run, parallel: &Run, label: &str) {
    assert_eq!(
        serial.seconds.to_bits(),
        parallel.seconds.to_bits(),
        "{label}: simulated seconds diverged"
    );
    assert_eq!(
        serial.metrics, parallel.metrics,
        "{label}: metrics diverged"
    );
    assert_eq!(serial.values, parallel.values, "{label}: values diverged");
    assert_eq!(serial.reached, parallel.reached, "{label}: reach diverged");
    assert_eq!(
        serial.per_cu_cycles, parallel.per_cu_cycles,
        "{label}: per-CU cycles diverged"
    );
    assert_eq!(
        serial.recovery, parallel.recovery,
        "{label}: recovery log diverged"
    );
}

fn assert_retry_free(run: &Run, label: &str) {
    assert_eq!(run.metrics.cas_failures, 0, "{label}: RF/AN CAS failures");
    assert_eq!(
        run.metrics.queue_empty_retries, 0,
        "{label}: RF/AN queue-empty retries"
    );
}

/// Runs `workload` serially and at each sweep worker count, pinning
/// byte-identity and the retry-free audit. Returns the number of plan
/// rounds observed across the parallel runs so callers can assert the
/// sweep was not vacuous.
fn sweep_workload_variant<W: PtWorkload>(
    gpu: &GpuConfig,
    dataset: Dataset,
    fraction: f64,
    workload: &W,
    variant: Variant,
) -> u64 {
    let graph = dataset.build(fraction);
    let serial =
        run_workload(gpu, &graph, workload, &config_for(variant, 1)).expect("serial run failed");
    assert_eq!(
        serial.profile.plan_rounds, 0,
        "serial engine must never plan"
    );
    let mut plan_rounds = 0;
    for workers in WORKER_SWEEP {
        let label = format!(
            "{}/{variant:?}/{:?}/workers={workers}",
            workload.name(),
            dataset
        );
        let parallel = run_workload(gpu, &graph, workload, &config_for(variant, workers))
            .expect("parallel run failed");
        assert_runs_identical(&serial, &parallel, &label);
        assert_retry_free(&parallel, &label);
        assert_eq!(
            parallel.profile.engine_workers, workers as u64,
            "{label}: worker gauge"
        );
        plan_rounds += parallel.profile.plan_rounds;
    }
    plan_rounds
}

/// The RF/AN sweep used by the per-workload differential tests.
fn sweep_workload<W: PtWorkload>(
    gpu: &GpuConfig,
    dataset: Dataset,
    fraction: f64,
    workload: &W,
) -> u64 {
    sweep_workload_variant(gpu, dataset, fraction, workload, Variant::RfAn)
}

#[test]
fn bfs_parallel_engine_is_byte_identical_across_workers() {
    let gpu = GpuConfig::test_tiny();
    let mut plan_rounds = 0;
    for (dataset, fraction) in PAR_SCALE {
        plan_rounds += sweep_workload(&gpu, dataset, fraction, &Bfs::new(dataset.source()));
    }
    assert!(plan_rounds > 0, "no parallel plan round ever ran");
}

#[test]
fn sssp_parallel_engine_is_byte_identical_across_workers() {
    let gpu = GpuConfig::test_tiny();
    let mut plan_rounds = 0;
    for (dataset, fraction) in PAR_SCALE {
        let graph = dataset.build(fraction);
        let weights = random_weights(&graph, 64, 0xA11CE);
        plan_rounds += sweep_workload(
            &gpu,
            dataset,
            fraction,
            &Sssp::new(dataset.source(), weights),
        );
    }
    assert!(plan_rounds > 0, "no parallel plan round ever ran");
}

#[test]
fn cc_parallel_engine_is_byte_identical_across_workers() {
    let gpu = GpuConfig::test_tiny();
    let mut plan_rounds = 0;
    for (dataset, fraction) in PAR_SCALE {
        plan_rounds += sweep_workload(&gpu, dataset, fraction, &ConnectedComponents);
    }
    assert!(plan_rounds > 0, "no parallel plan round ever ran");
}

#[test]
fn prdelta_parallel_engine_is_byte_identical_across_workers() {
    let gpu = GpuConfig::test_tiny();
    let mut plan_rounds = 0;
    for (dataset, fraction) in PAR_SCALE {
        plan_rounds += sweep_workload(&gpu, dataset, fraction, &PrDelta::new(dataset.source()));
    }
    assert!(plan_rounds > 0, "no parallel plan round ever ran");
}

/// The segmented leg: SEG-RF/AN's plan/commit split must be just as
/// worker-count-unobservable as the bounded queues' — segment installs
/// and the `plan_token` prediction happen identically at 1/2/4 workers,
/// so every `Run` byte (simulated seconds, metrics, values, per-CU
/// cycles) matches the serial baseline across the six dataset shapes.
#[test]
fn segmented_parallel_engine_is_byte_identical_across_workers() {
    let gpu = GpuConfig::test_tiny();
    let mut plan_rounds = 0;
    for (dataset, fraction) in PAR_SCALE {
        plan_rounds += sweep_workload_variant(
            &gpu,
            dataset,
            fraction,
            &Bfs::new(dataset.source()),
            Variant::SegRfAn,
        );
    }
    assert!(plan_rounds > 0, "no parallel plan round ever ran");
}

/// A seeded fault matrix covering all three fault kinds, scaled to the
/// tiny test GPU (mirrors the chaos suite's plan shape).
fn chaos_plan(seed: u64, num_vertices: usize, value_buffer: &str) -> FaultPlan {
    FaultPlan::seeded(
        seed,
        &FaultSpec {
            wave_kills: 2,
            cu_stalls: 2,
            mem_poisons: 2,
            max_round: 8,
            waves: 3,
            cus: 2,
            max_stall_rounds: 4,
            max_stall_cycles: 200,
            poison_buffer: value_buffer.into(),
            poison_words: num_vertices,
        },
    )
}

fn chaos_policy() -> RecoveryPolicy {
    RecoveryPolicy {
        checkpoint_levels: 3,
        max_attempts: 16,
        ..RecoveryPolicy::default()
    }
}

/// Fault injection and checkpoint/resume under the parallel engine:
/// the same seeded `FaultPlan` must abort on identical rounds, take
/// identical checkpoints, and recover to identical values at any
/// worker count. The full `RecoveryLog` (every abort's epoch, attempt
/// number, reason, and rounds lost) is part of the byte-diff.
#[test]
fn chaos_recovery_is_byte_identical_across_workers() {
    let gpu = GpuConfig::test_tiny();
    let policy = chaos_policy();
    let mut recovered = 0;
    for (dataset, fraction) in PAR_SCALE.iter().take(3) {
        let graph = dataset.build(*fraction);
        let source = dataset.source();
        let workload = Bfs::new(source);
        let plan = chaos_plan(0xC4A05 ^ *fraction as u64, graph.num_vertices(), "costs");
        let serial = run_recoverable(&gpu, &graph, &workload, &config(1), &policy, &plan)
            .expect("serial chaos run failed");
        for workers in WORKER_SWEEP {
            let label = format!("chaos/{dataset:?}/workers={workers}");
            let parallel =
                run_recoverable(&gpu, &graph, &workload, &config(workers), &policy, &plan)
                    .expect("parallel chaos run failed");
            assert_runs_identical(&serial, &parallel, &label);
        }
        recovered += serial.recovery.attempts.len();
    }
    assert!(recovered > 0, "no fault ever fired: chaos leg is vacuous");
}

/// Checkpoint/resume specifically: with aggressive checkpointing the
/// recovered runs must agree on *which* epochs were checkpointed and
/// how many rounds each abort discarded — i.e. resume points land on
/// identical rounds regardless of worker count.
#[test]
fn checkpoint_resume_lands_on_identical_rounds_under_parallel_engine() {
    let gpu = GpuConfig::test_tiny();
    let policy = RecoveryPolicy {
        checkpoint_levels: 2,
        max_attempts: 16,
        ..RecoveryPolicy::default()
    };
    let (dataset, fraction) = PAR_SCALE[3]; // RoadNY: deep BFS, many epochs
    let graph = dataset.build(fraction);
    let source = dataset.source();
    let workload = Bfs::new(source);
    let plan = chaos_plan(0xF00D, graph.num_vertices(), "costs");
    let serial = run_recoverable(&gpu, &graph, &workload, &config(1), &policy, &plan)
        .expect("serial run failed");
    let parallel = run_recoverable(&gpu, &graph, &workload, &config(4), &policy, &plan)
        .expect("parallel run failed");
    assert_runs_identical(&serial, &parallel, "checkpoint/RoadNY");
    assert_eq!(serial.recovery.checkpoints, parallel.recovery.checkpoints);
    assert_eq!(serial.recovery.epochs, parallel.recovery.epochs);
    assert_eq!(serial.recovery.rounds_lost, parallel.recovery.rounds_lost);
    assert!(
        serial.recovery.checkpoints > 0,
        "no checkpoint taken: resume leg is vacuous"
    );
}
