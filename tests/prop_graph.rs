//! Randomized property tests on the graph substrate: CSR invariants, BFS
//! level properties, generator determinism, and file-format round trips.
//!
//! Each property runs as a seeded loop over a `SplitMix64` stream —
//! deterministic across runs and platforms, with the failing case
//! identified by its iteration index.

use ptq::graph::build_streamed;
use ptq::graph::gen::{
    erdos_renyi, for_each_giant_edge, giant_with_chunk, roadmap, rodinia, social, synthetic_tree,
    RoadmapParams, SocialParams,
};
use ptq::graph::io::{dimacs, rodinia as rodinia_io, snap};
use ptq::graph::rng::SplitMix64;
use ptq::graph::{bfs_levels, Csr, CsrBuilder, UNREACHED};
use std::io::Cursor;

const CASES: usize = 64;

fn random_edges(rng: &mut SplitMix64, n: usize, max_edges: usize) -> Vec<(u32, u32)> {
    let m = rng.range_u64(0, max_edges as u64 + 1) as usize;
    (0..m)
        .map(|_| (rng.range_u32(0, n as u32), rng.range_u32(0, n as u32)))
        .collect()
}

fn graph_of(n: usize, edges: &[(u32, u32)]) -> Csr {
    let mut b = CsrBuilder::new(n);
    for &(a, x) in edges {
        b.add_edge(a % n as u32, x % n as u32);
    }
    b.build()
}

/// The CSR builder preserves the edge multiset and per-source order.
#[test]
fn csr_builder_preserves_edges() {
    let mut rng = SplitMix64::seed_from_u64(0xC5_B11D);
    for case in 0..CASES {
        let n = rng.range_u64(1, 60) as usize;
        let edges = random_edges(&mut rng, n, 200);
        let mut builder = CsrBuilder::new(n);
        for &(a, b) in &edges {
            builder.add_edge(a, b);
        }
        let g = builder.build();
        assert_eq!(g.num_edges(), edges.len(), "case {case}");
        // Per-source insertion order is preserved by the stable sort.
        for v in 0..n as u32 {
            let expect: Vec<u32> = edges
                .iter()
                .filter(|(a, _)| *a == v)
                .map(|&(_, b)| b)
                .collect();
            assert_eq!(g.neighbors(v), &expect[..], "case {case} vertex {v}");
        }
        // Offsets are consistent with degrees.
        let total: u32 = (0..n as u32).map(|v| g.degree(v)).sum();
        assert_eq!(total as usize, g.num_edges(), "case {case}");
    }
}

/// BFS levels satisfy the defining property: level(source) = 0, and every
/// edge (u, v) with u reached implies level(v) <= level(u) + 1, with at
/// least one incoming edge achieving equality for v != source.
#[test]
fn bfs_levels_are_valid_distances() {
    let mut rng = SplitMix64::seed_from_u64(0xBF5_1E7E);
    for case in 0..CASES {
        let n = rng.range_u64(1, 80) as usize;
        let edges = random_edges(&mut rng, n, 240);
        let src = rng.range_u32(0, n as u32);
        let g = graph_of(n, &edges);
        let r = bfs_levels(&g, src);
        assert_eq!(r.levels[src as usize], 0, "case {case}");
        for u in 0..n as u32 {
            if r.levels[u as usize] == UNREACHED {
                continue;
            }
            for &v in g.neighbors(u) {
                assert!(
                    r.levels[v as usize] <= r.levels[u as usize] + 1,
                    "case {case}: edge {u}->{v} violates triangle"
                );
            }
        }
        for v in 0..n as u32 {
            let lv = r.levels[v as usize];
            if lv != UNREACHED && lv > 0 {
                // some predecessor at exactly lv - 1
                let has_pred = (0..n as u32)
                    .any(|u| r.levels[u as usize] == lv - 1 && g.neighbors(u).contains(&v));
                assert!(
                    has_pred,
                    "case {case}: vertex {v} at level {lv} lacks a predecessor"
                );
            }
        }
    }
}

/// All generators are deterministic functions of their parameters.
#[test]
fn generators_are_deterministic() {
    let mut rng = SplitMix64::seed_from_u64(0x00DE_7E12);
    for _ in 0..24 {
        let seed = rng.range_u64(0, 500);
        assert_eq!(erdos_renyi(40, 120, seed), erdos_renyi(40, 120, seed));
        assert_eq!(rodinia(50, 6, seed), rodinia(50, 6, seed));
        let sp = SocialParams {
            vertices: 60,
            avg_degree: 5.0,
            alpha: 1.8,
            max_degree: 30,
            seed,
        };
        assert_eq!(social(sp), social(sp));
        let rp = RoadmapParams {
            rows: 8,
            cols: 9,
            keep_prob: 0.5,
            seed,
        };
        assert_eq!(roadmap(rp), roadmap(rp));
    }
}

/// The tree generator always yields a connected tree with n-1 edges.
#[test]
fn tree_invariants() {
    let mut rng = SplitMix64::seed_from_u64(0x7BEE);
    for case in 0..CASES {
        let n = rng.range_u64(1, 5000) as usize;
        let fanout = rng.range_u32(1, 8);
        let g = synthetic_tree(n, fanout);
        assert_eq!(g.num_vertices(), n, "case {case}");
        assert_eq!(g.num_edges(), n - 1, "case {case}");
        assert_eq!(bfs_levels(&g, 0).reached, n, "case {case}");
    }
}

/// DIMACS round trip is lossless for arbitrary graphs.
#[test]
fn dimacs_roundtrip() {
    let mut rng = SplitMix64::seed_from_u64(0xD1_AC5);
    for case in 0..CASES {
        let n = rng.range_u64(1, 40) as usize;
        let edges = random_edges(&mut rng, n, 120);
        let g = graph_of(n, &edges);
        let mut buf = Vec::new();
        dimacs::write_gr(&g, &mut buf).unwrap();
        assert_eq!(dimacs::read_gr(Cursor::new(buf)).unwrap(), g, "case {case}");
    }
}

/// Rodinia-format round trip is lossless.
#[test]
fn rodinia_roundtrip() {
    let mut rng = SplitMix64::seed_from_u64(0x000D_1A10);
    for case in 0..CASES {
        let n = rng.range_u64(1, 40) as usize;
        let edges = random_edges(&mut rng, n, 120);
        let src = rng.range_u32(0, n as u32);
        let g = graph_of(n, &edges);
        let mut buf = Vec::new();
        rodinia_io::write_rodinia(&g, src, &mut buf).unwrap();
        let (g2, s2) = rodinia_io::read_rodinia(Cursor::new(buf)).unwrap();
        assert_eq!(g2, g, "case {case}");
        assert_eq!(s2, src, "case {case}");
    }
}

/// SNAP round trip preserves the degree multiset (ids may be renumbered
/// and isolated vertices dropped by the format).
#[test]
fn snap_roundtrip_preserves_degrees() {
    let mut rng = SplitMix64::seed_from_u64(0x5A_A9);
    for case in 0..CASES {
        let n = rng.range_u64(1, 40) as usize;
        let edges = random_edges(&mut rng, n, 120);
        let g = graph_of(n, &edges);
        let mut buf = Vec::new();
        snap::write_edge_list(&g, &mut buf).unwrap();
        let (g2, _) = snap::read_edge_list(Cursor::new(buf)).unwrap();
        assert_eq!(g2.num_edges(), g.num_edges(), "case {case}");
        let degrees = |g: &Csr| {
            let mut d: Vec<u32> = (0..g.num_vertices() as u32)
                .map(|v| g.degree(v))
                .filter(|&d| d > 0)
                .collect();
            d.sort_unstable();
            d
        };
        // Out-degree multiset of non-isolated sources is preserved...
        // except vertices that appear only as destinations, which exist in
        // both graphs with degree zero and are filtered out.
        assert_eq!(degrees(&g2), degrees(&g), "case {case}");
    }
}

/// The chunked streamed builder is byte-identical to the in-memory
/// `CsrBuilder` across chunk sizes {1, 7, 4096, ≥edge-count}, on random
/// multigraphs that include self-loops, parallel edges, and empty
/// vertices (ISSUE 6 satellite).
#[test]
fn streamed_builder_matches_in_memory_builder() {
    let mut rng = SplitMix64::seed_from_u64(0x57_2EA3);
    for case in 0..CASES {
        let n = rng.range_u64(1, 80) as usize;
        let mut edges = random_edges(&mut rng, n, 300);
        // Force the edge cases the satellite names: a self-loop plus a
        // guaranteed-empty vertex (no outgoing edges from n-1).
        if n > 1 {
            edges.retain(|&(a, _)| a != n as u32 - 1);
            edges.push((0, 0));
        }
        let mut builder = CsrBuilder::new(n);
        for &(a, b) in &edges {
            builder.add_edge(a, b);
        }
        let reference = builder.build();
        for chunk in [1usize, 7, 4096, edges.len().max(1)] {
            let streamed = build_streamed(n, chunk, |emit| {
                for &(a, b) in &edges {
                    emit(a, b);
                }
            });
            assert_eq!(streamed, reference, "case {case} chunk {chunk}");
        }
    }
}

/// The giant family is chunk-independent: any chunk size streams to the
/// same bytes the in-memory builder produces from the same edge stream.
#[test]
fn giant_family_is_chunk_independent() {
    let n = 2_500;
    let mut builder = CsrBuilder::new(n);
    for_each_giant_edge(n, 5, 0xB165, &mut |s, d| builder.add_edge(s, d));
    let reference = builder.build();
    for chunk in [1usize, 7, 4096, reference.num_edges().max(1)] {
        assert_eq!(
            giant_with_chunk(n, 5, 0xB165, chunk),
            reference,
            "chunk {chunk}"
        );
    }
}
