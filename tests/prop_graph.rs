//! Property-based tests on the graph substrate: CSR invariants, BFS level
//! properties, generator determinism, and file-format round trips.

use proptest::collection::vec;
use proptest::prelude::*;
use ptq::graph::gen::{
    erdos_renyi, roadmap, rodinia, social, synthetic_tree, RoadmapParams, SocialParams,
};
use ptq::graph::io::{dimacs, rodinia as rodinia_io, snap};
use ptq::graph::{bfs_levels, Csr, CsrBuilder, UNREACHED};
use std::io::Cursor;

fn arb_edges(n: usize) -> impl Strategy<Value = Vec<(u32, u32)>> {
    vec((0..n as u32, 0..n as u32), 0..n * 4)
}

proptest! {
    /// The CSR builder preserves the edge multiset and per-source order.
    #[test]
    fn csr_builder_preserves_edges(n in 1usize..60, edges in arb_edges(50)) {
        let edges: Vec<(u32, u32)> =
            edges.into_iter().map(|(a, b)| (a % n as u32, b % n as u32)).collect();
        let mut builder = CsrBuilder::new(n);
        for &(a, b) in &edges {
            builder.add_edge(a, b);
        }
        let g = builder.build();
        prop_assert_eq!(g.num_edges(), edges.len());
        // Per-source insertion order is preserved by the stable sort.
        for v in 0..n as u32 {
            let expect: Vec<u32> =
                edges.iter().filter(|(a, _)| *a == v).map(|&(_, b)| b).collect();
            prop_assert_eq!(g.neighbors(v), &expect[..]);
        }
        // Offsets are consistent with degrees.
        let total: u32 = (0..n as u32).map(|v| g.degree(v)).sum();
        prop_assert_eq!(total as usize, g.num_edges());
    }

    /// BFS levels satisfy the defining property: level(source) = 0, and
    /// every edge (u, v) with u reached implies level(v) <= level(u) + 1,
    /// with at least one incoming edge achieving equality for v != source.
    #[test]
    fn bfs_levels_are_valid_distances(n in 1usize..80, edges in arb_edges(60), src in 0usize..80) {
        let edges: Vec<(u32, u32)> =
            edges.into_iter().map(|(a, b)| (a % n as u32, b % n as u32)).collect();
        let src = (src % n) as u32;
        let mut b = CsrBuilder::new(n);
        for &(x, y) in &edges {
            b.add_edge(x, y);
        }
        let g = b.build();
        let r = bfs_levels(&g, src);
        prop_assert_eq!(r.levels[src as usize], 0);
        for u in 0..n as u32 {
            if r.levels[u as usize] == UNREACHED {
                continue;
            }
            for &v in g.neighbors(u) {
                prop_assert!(r.levels[v as usize] <= r.levels[u as usize] + 1);
            }
        }
        for v in 0..n as u32 {
            let lv = r.levels[v as usize];
            if lv != UNREACHED && lv > 0 {
                // some predecessor at exactly lv - 1
                let has_pred = (0..n as u32).any(|u| {
                    r.levels[u as usize] == lv - 1 && g.neighbors(u).contains(&v)
                });
                prop_assert!(has_pred, "vertex {} at level {} lacks a predecessor", v, lv);
            }
        }
    }

    /// All generators are deterministic functions of their parameters.
    #[test]
    fn generators_are_deterministic(seed in 0u64..500) {
        prop_assert_eq!(erdos_renyi(40, 120, seed), erdos_renyi(40, 120, seed));
        prop_assert_eq!(rodinia(50, 6, seed), rodinia(50, 6, seed));
        let sp = SocialParams {
            vertices: 60,
            avg_degree: 5.0,
            alpha: 1.8,
            max_degree: 30,
            seed,
        };
        prop_assert_eq!(social(sp), social(sp));
        let rp = RoadmapParams { rows: 8, cols: 9, keep_prob: 0.5, seed };
        prop_assert_eq!(roadmap(rp), roadmap(rp));
    }

    /// The tree generator always yields a connected tree with n-1 edges.
    #[test]
    fn tree_invariants(n in 1usize..5000, fanout in 1u32..8) {
        let g = synthetic_tree(n, fanout);
        prop_assert_eq!(g.num_vertices(), n);
        prop_assert_eq!(g.num_edges(), n - 1);
        prop_assert_eq!(bfs_levels(&g, 0).reached, n);
    }

    /// DIMACS round trip is lossless for arbitrary graphs.
    #[test]
    fn dimacs_roundtrip(n in 1usize..40, edges in arb_edges(30)) {
        let g = graph_of(n, edges);
        let mut buf = Vec::new();
        dimacs::write_gr(&g, &mut buf).unwrap();
        prop_assert_eq!(dimacs::read_gr(Cursor::new(buf)).unwrap(), g);
    }

    /// Rodinia-format round trip is lossless.
    #[test]
    fn rodinia_roundtrip(n in 1usize..40, edges in arb_edges(30), src in 0usize..40) {
        let g = graph_of(n, edges);
        let src = (src % n) as u32;
        let mut buf = Vec::new();
        rodinia_io::write_rodinia(&g, src, &mut buf).unwrap();
        let (g2, s2) = rodinia_io::read_rodinia(Cursor::new(buf)).unwrap();
        prop_assert_eq!(g2, g);
        prop_assert_eq!(s2, src);
    }

    /// SNAP round trip preserves the degree multiset (ids may be
    /// renumbered and isolated vertices dropped by the format).
    #[test]
    fn snap_roundtrip_preserves_degrees(n in 1usize..40, edges in arb_edges(30)) {
        let g = graph_of(n, edges);
        let mut buf = Vec::new();
        snap::write_edge_list(&g, &mut buf).unwrap();
        let (g2, _) = snap::read_edge_list(Cursor::new(buf)).unwrap();
        prop_assert_eq!(g2.num_edges(), g.num_edges());
        let degrees = |g: &Csr| {
            let mut d: Vec<u32> = (0..g.num_vertices() as u32)
                .map(|v| g.degree(v))
                .filter(|&d| d > 0)
                .collect();
            d.sort_unstable();
            d
        };
        // Out-degree multiset of non-isolated sources is preserved...
        // except vertices that appear only as destinations, which exist in
        // both graphs with degree zero and are filtered out.
        prop_assert_eq!(degrees(&g2), degrees(&g));
    }
}

fn graph_of(n: usize, edges: Vec<(u32, u32)>) -> Csr {
    let mut b = CsrBuilder::new(n);
    for (a, x) in edges {
        b.add_edge(a % n as u32, x % n as u32);
    }
    b.build()
}
