//! End-to-end integration: every dataset family × every queue variant ×
//! both GPU models must produce exact, validated BFS levels, with the
//! metric invariants the paper's design promises.

use ptq::bfs::baseline::{run_chai, run_rodinia};
use ptq::bfs::{run_bfs, PtConfig};
use ptq::graph::{bfs_levels, validate_levels, Dataset};
use ptq::queue::Variant;
use simt::GpuConfig;

const SCALE: f64 = 0.004;

fn datasets() -> Vec<Dataset> {
    vec![
        Dataset::Synthetic,
        Dataset::GplusCombined,
        Dataset::SocLiveJournal1,
        Dataset::RoadNY,
        Dataset::RodiniaGraph65536,
        Dataset::ChaiBAY,
    ]
}

#[test]
fn every_variant_is_exact_on_every_dataset_family() {
    for dataset in datasets() {
        let graph = dataset.build(SCALE);
        let reference = bfs_levels(&graph, dataset.source());
        for (gpu, wgs) in [(GpuConfig::fiji(), 28usize), (GpuConfig::spectre(), 8)] {
            for variant in Variant::ALL {
                let run = run_bfs(&gpu, &graph, dataset.source(), &PtConfig::new(variant, wgs))
                    .unwrap_or_else(|e| panic!("{dataset:?} {variant:?} on {}: {e}", gpu.name));
                assert_eq!(
                    run.reached, reference.reached,
                    "{dataset:?} {variant:?} on {}",
                    gpu.name
                );
                validate_levels(&graph, dataset.source(), &run.values).unwrap_or_else(
                    |(v, want, got)| {
                        panic!(
                            "{dataset:?} {variant:?} on {}: vertex {v} level {got} != {want}",
                            gpu.name
                        )
                    },
                );
            }
        }
    }
}

#[test]
fn rfan_never_retries_anywhere() {
    // Runs are audited end to end (PtConfig defaults audit on): every
    // wavefront queue op already validated its atomic budget in-sim; the
    // assertions below pin the run-level aggregates per dataset for both
    // retry-free variants.
    for dataset in datasets() {
        let graph = dataset.build(SCALE);
        for variant in [Variant::RfAn, Variant::RfOnly] {
            let run = run_bfs(
                &GpuConfig::fiji(),
                &graph,
                dataset.source(),
                &PtConfig::new(variant, 56),
            )
            .unwrap_or_else(|e| panic!("{dataset:?} {variant:?}: {e}"));
            assert_eq!(run.metrics.cas_attempts, 0, "{dataset:?} {variant:?}");
            assert_eq!(run.metrics.cas_failures, 0, "{dataset:?} {variant:?}");
            assert_eq!(
                run.metrics.queue_empty_retries, 0,
                "{dataset:?} {variant:?}"
            );
            assert_eq!(run.metrics.total_retries(), 0, "{dataset:?} {variant:?}");
        }
    }
}

#[test]
fn cas_designs_always_retry_under_multi_wave_load() {
    let graph = Dataset::Synthetic.build(SCALE);
    for variant in [Variant::Base, Variant::An] {
        let run = run_bfs(
            &GpuConfig::spectre(),
            &graph,
            0,
            &PtConfig::new(variant, 16),
        )
        .unwrap();
        assert!(
            run.metrics.total_retries() > 0,
            "{variant:?} reported no retries"
        );
    }
}

#[test]
fn baselines_are_exact_too() {
    let dataset = Dataset::RodiniaGraph4096;
    let graph = dataset.build(1.0); // 4,096 vertices: full size is cheap
    let rodinia = run_rodinia(&GpuConfig::spectre(), &graph, 0, 8).unwrap();
    validate_levels(&graph, 0, &rodinia.values).unwrap();

    let road = Dataset::ChaiNYR.build(SCALE);
    let chai = run_chai(&GpuConfig::spectre(), &road, 0, 8).unwrap();
    validate_levels(&road, 0, &chai.values).unwrap();
}

#[test]
fn runs_are_deterministic_across_processes_worth_of_state() {
    let graph = Dataset::SocLiveJournal1.build(SCALE);
    let config = PtConfig::new(Variant::An, 12);
    let a = run_bfs(&GpuConfig::spectre(), &graph, 0, &config).unwrap();
    let b = run_bfs(&GpuConfig::spectre(), &graph, 0, &config).unwrap();
    assert_eq!(a.metrics, b.metrics);
    assert_eq!(a.seconds, b.seconds);
    assert_eq!(a.values, b.values);
}

#[test]
fn headline_ordering_rfan_fastest_on_saturating_load() {
    // 2% scale: ~15 vertices per persistent thread, enough saturation for
    // the contention gaps to open up.
    let graph = Dataset::Synthetic.build(0.02);
    let gpu = GpuConfig::fiji();
    let time = |v| {
        run_bfs(&gpu, &graph, 0, &PtConfig::new(v, 224))
            .unwrap()
            .seconds
    };
    let base = time(Variant::Base);
    let an = time(Variant::An);
    let rfan = time(Variant::RfAn);
    assert!(rfan < an, "RF/AN {rfan} vs AN {an}");
    assert!(an < base, "AN {an} vs BASE {base}");
    assert!(
        base > 4.0 * rfan,
        "synthetic gap should be large: BASE {base} vs RF/AN {rfan}"
    );
}

#[test]
fn atomic_ratio_matches_figure_5_direction() {
    // Figure 5 counts *scheduler* atomics: reservations and their
    // retries, per-lane for BASE vs per-wavefront for RF/AN.
    let graph = Dataset::Synthetic.build(0.01);
    let gpu = GpuConfig::fiji();
    let atoms = |v| {
        run_bfs(&gpu, &graph, 0, &PtConfig::new(v, 224))
            .unwrap()
            .metrics
            .scheduler_atomics
    };
    let ratio = atoms(Variant::Base) as f64 / atoms(Variant::RfAn) as f64;
    assert!(
        ratio > 20.0,
        "BASE/RFAN scheduler-atomic ratio {ratio} too small"
    );
}

#[test]
fn more_threads_help_rfan_on_saturating_load() {
    let graph = Dataset::Synthetic.build(0.01);
    let gpu = GpuConfig::fiji();
    let time = |wgs| {
        run_bfs(&gpu, &graph, 0, &PtConfig::new(Variant::RfAn, wgs))
            .unwrap()
            .seconds
    };
    let t8 = time(8);
    let t224 = time(224);
    assert!(
        t224 * 4.0 < t8,
        "224 WGs ({t224}) should be far faster than 8 ({t8})"
    );
}
